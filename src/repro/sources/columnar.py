"""Columnar proxy-log chunks: the zero-copy ingestion data plane.

The paper's operational story is explicitly big-data (Section VII): a
13-node Hadoop cluster extracts summaries *once* so later analyses
never reprocess raw logs.  At that scale the record path cannot afford
one Python object per log line.  This module provides the columnar
alternative to :mod:`repro.sources.proxy`'s object path:

- :class:`StringTable` — append-only string interning, so endpoint and
  URL columns are small integer ids instead of repeated strings,
- :class:`RecordChunk` — a bounded slice of the log as one numpy
  structured array (``timestamp/f8`` plus ``i4`` ids into the chunk's
  :class:`ColumnTables`),
- :func:`read_log_chunks` / :func:`records_to_chunks` /
  :func:`chunks_to_records` — the converters between the TSV log
  format, object records, and chunks,
- :class:`ColumnarAccumulator` / :func:`summaries_from_chunks` — the
  vectorized per-pair fold: whole chunks are grouped with one
  ``argsort`` and per-pair slot histograms are built with
  ``np.unique``/``searchsorted``-style run-length passes instead of a
  Python-level loop per event.

The columnar fold is **bit-identical** to the streaming object path
(:class:`~repro.sources.proxy.SummaryAccumulator`): timestamps quantize
through the same float64 expressions, per-slot counts merge to the same
histograms, and the capped URL sample keeps the same earliest-k
``(timestamp, arrival)`` observations.  ``tests/sources/test_columnar.py``
and the 4-way parity suite enforce this.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.timeseries import ActivitySummary
from repro.sources.proxy import PairConfig, ProxyLogRecord
from repro.utils.validation import require, require_positive

__all__ = [
    "CHUNK_DTYPE",
    "ColumnTables",
    "ColumnarAccumulator",
    "RecordChunk",
    "StringTable",
    "chunks_to_records",
    "read_log_chunks",
    "records_to_chunks",
    "summaries_from_chunks",
]

#: One parsed log line as a structured-array row.  Strings live in the
#: chunk's :class:`ColumnTables`; the row stores only interned ids.
CHUNK_DTYPE = np.dtype(
    [
        ("timestamp", "f8"),
        ("source_mac", "i4"),
        ("source_ip", "i4"),
        ("destination", "i4"),
        ("url", "i4"),
        ("status", "i4"),
        ("bytes_sent", "i8"),
    ]
)


class StringTable:
    """Append-only string interning table (id == insertion order)."""

    __slots__ = ("_ids", "_values")

    def __init__(self, values: Iterable[str] = ()) -> None:
        self._ids: Dict[str, int] = {}
        self._values: List[str] = []
        for value in values:
            self.intern(value)

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> str:
        return self._values[index]

    @property
    def values(self) -> List[str]:
        """The interned strings, id order (a live reference; don't mutate)."""
        return self._values

    def intern(self, value: str) -> int:
        """The id of ``value``, interning it on first sight."""
        ident = self._ids.get(value)
        if ident is None:
            ident = self._ids[value] = len(self._values)
            self._values.append(value)
        return ident

    def intern_many(self, values: Iterable[str]) -> np.ndarray:
        """Intern a column of strings; returns their ids as ``i4``."""
        intern = self.intern
        return np.fromiter(
            (intern(value) for value in values), dtype=np.int32
        )

    def intern_column(self, values: Sequence[str]) -> np.ndarray:
        """Intern a materialized column; Python work is O(distinct).

        ``np.unique`` collapses the column at C speed, only the distinct
        values pass through the Python-level dict, and a small lookup
        table fans the ids back out — the workhorse of the columnar TSV
        parser, where a 64k-row batch typically holds a few hundred
        distinct endpoints.
        """
        uniques, inverse = np.unique(np.asarray(values), return_inverse=True)
        lut = np.empty(len(uniques), dtype=np.int32)
        for index, value in enumerate(uniques.tolist()):
            lut[index] = self.intern(value)
        return lut[inverse]

    def decode(self, ids: np.ndarray) -> List[str]:
        """The strings behind an id array, in order."""
        values = self._values
        return [values[i] for i in ids.tolist()]


@dataclass
class ColumnTables:
    """The interning tables shared by every chunk of one log stream."""

    macs: StringTable = field(default_factory=StringTable)
    ips: StringTable = field(default_factory=StringTable)
    domains: StringTable = field(default_factory=StringTable)
    urls: StringTable = field(default_factory=StringTable)


@dataclass
class RecordChunk:
    """A bounded run of proxy-log records in columnar form.

    ``data`` is a :data:`CHUNK_DTYPE` structured array; ``tables`` maps
    the id columns back to strings (shared across every chunk of one
    stream, so ids are stable stream-wide); ``base_sequence`` is the
    global arrival index of row 0, preserving the arrival order the URL
    sample tie-breaks on.
    """

    data: np.ndarray
    tables: ColumnTables
    base_sequence: int = 0

    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def timestamps(self) -> np.ndarray:
        """The ``f8`` timestamp column (a view, not a copy)."""
        return self.data["timestamp"]

    def sequences(self) -> np.ndarray:
        """Global arrival index of every row."""
        return self.base_sequence + np.arange(len(self), dtype=np.int64)

    def to_records(self) -> Iterator[ProxyLogRecord]:
        """Rehydrate object records (the compatibility shim)."""
        tables = self.tables
        for row in self.data:
            yield ProxyLogRecord(
                timestamp=float(row["timestamp"]),
                source_mac=tables.macs[int(row["source_mac"])],
                source_ip=tables.ips[int(row["source_ip"])],
                destination=tables.domains[int(row["destination"])],
                url=tables.urls[int(row["url"])],
                status=int(row["status"]),
                bytes_sent=int(row["bytes_sent"]),
            )

    @classmethod
    def from_records(
        cls,
        records: Sequence[ProxyLogRecord],
        *,
        tables: Optional[ColumnTables] = None,
        base_sequence: int = 0,
    ) -> "RecordChunk":
        """Columnarize a materialized batch of object records."""
        tables = tables if tables is not None else ColumnTables()
        data = np.empty(len(records), dtype=CHUNK_DTYPE)
        data["timestamp"] = [r.timestamp for r in records]
        data["source_mac"] = tables.macs.intern_column(
            [r.source_mac for r in records]
        )
        data["source_ip"] = tables.ips.intern_column(
            [r.source_ip for r in records]
        )
        data["destination"] = tables.domains.intern_column(
            [r.destination for r in records]
        )
        data["url"] = tables.urls.intern_column([r.url for r in records])
        data["status"] = [r.status for r in records]
        data["bytes_sent"] = [r.bytes_sent for r in records]
        return cls(data=data, tables=tables, base_sequence=base_sequence)


def records_to_chunks(
    records: Iterable[ProxyLogRecord],
    *,
    chunk_size: int = 65_536,
    tables: Optional[ColumnTables] = None,
) -> Iterator[RecordChunk]:
    """Batch an object-record stream into columnar chunks."""
    require_positive(chunk_size, "chunk_size")
    tables = tables if tables is not None else ColumnTables()
    buffer: List[ProxyLogRecord] = []
    sequence = 0
    for record in records:
        buffer.append(record)
        if len(buffer) >= chunk_size:
            yield RecordChunk.from_records(
                buffer, tables=tables, base_sequence=sequence
            )
            sequence += len(buffer)
            buffer = []
    if buffer:
        yield RecordChunk.from_records(
            buffer, tables=tables, base_sequence=sequence
        )


def chunks_to_records(
    chunks: Iterable[RecordChunk],
) -> Iterator[ProxyLogRecord]:
    """Flatten chunks back into an object-record stream."""
    for chunk in chunks:
        yield from chunk.to_records()


def read_log_chunks(
    path: Union[str, Path],
    *,
    chunk_size: int = 65_536,
    tables: Optional[ColumnTables] = None,
) -> Iterator[RecordChunk]:
    """Parse a (possibly gzipped) TSV log straight into columnar chunks.

    The parser never builds :class:`ProxyLogRecord` objects: each batch
    of lines is split once and written column by column into one
    structured array, with endpoint/URL strings interned as they are
    first seen.
    """
    require_positive(chunk_size, "chunk_size")
    path = Path(path)
    tables = tables if tables is not None else ColumnTables()
    opener = gzip.open if path.suffix == ".gz" else open
    sequence = 0
    with opener(path, "rt", encoding="utf-8") as handle:
        while True:
            lines = list(islice(handle, chunk_size))
            if not lines:
                break
            fields = _batch_fields(lines)
            if len(fields) != _N_FIELDS * len(lines):
                # Blank or malformed lines in this batch: fall back to
                # the per-line parser, which skips blanks and points at
                # the offending line.
                fields = _fields_per_line(lines)
            chunk = _chunk_from_fields(fields, tables, sequence)
            sequence += len(chunk)
            if len(chunk):
                yield chunk


_N_FIELDS = 7


def _batch_fields(lines: List[str]) -> List[str]:
    """Flatten a batch of TSV lines into one field list, C-speed.

    One ``join``/``replace``/``split`` turns the whole batch into a flat
    field list without touching individual lines from Python; the caller
    validates the count and falls back to :func:`_fields_per_line` when
    it does not divide evenly (blank or malformed lines).
    """
    text = "".join(lines)
    if text.endswith("\n"):
        text = text[:-1]
    return text.replace("\n", "\t").split("\t")


def _fields_per_line(lines: List[str]) -> List[str]:
    """Per-line fallback: skip blanks, reject malformed lines."""
    fields: List[str] = []
    for line in lines:
        if not line.strip():
            continue
        parts = line.rstrip("\n").split("\t")
        require(len(parts) == _N_FIELDS, f"malformed log line: {line!r}")
        fields.extend(parts)
    return fields


def _chunk_from_fields(
    fields: List[str], tables: ColumnTables, base_sequence: int
) -> RecordChunk:
    data = np.empty(len(fields) // _N_FIELDS, dtype=CHUNK_DTYPE)
    data["timestamp"] = np.array(fields[0::_N_FIELDS], dtype=np.float64)
    data["source_mac"] = tables.macs.intern_column(fields[1::_N_FIELDS])
    data["source_ip"] = tables.ips.intern_column(fields[2::_N_FIELDS])
    data["destination"] = tables.domains.intern_column(fields[3::_N_FIELDS])
    data["url"] = tables.urls.intern_column(fields[4::_N_FIELDS])
    data["status"] = np.array(fields[5::_N_FIELDS], dtype=np.int64)
    data["bytes_sent"] = np.array(fields[6::_N_FIELDS], dtype=np.int64)
    return RecordChunk(data=data, tables=tables, base_sequence=base_sequence)


class _ColumnarPairState:
    """One pair's slot histogram and URL sample, as packed arrays."""

    __slots__ = ("slots", "counts", "url_ts", "url_seq", "urls", "max_urls")

    def __init__(self, max_urls: int) -> None:
        self.slots = np.empty(0, dtype=np.int64)
        self.counts = np.empty(0, dtype=np.int64)
        self.url_ts = np.empty(0, dtype=np.float64)
        self.url_seq = np.empty(0, dtype=np.int64)
        self.urls: List[str] = []
        self.max_urls = max_urls

    def merge_counts(self, slots: np.ndarray, counts: np.ndarray) -> None:
        """Fold a sorted (slot, count) run into the histogram."""
        if self.slots.size == 0:
            self.slots, self.counts = slots, counts
            return
        # Fast append path: a later chunk of the same stream usually
        # extends the window, so the new run often lands entirely past
        # the existing slots (searchsorted beats a full re-sort there).
        if np.searchsorted(slots, self.slots[-1], side="right") == 0:
            self.slots = np.concatenate([self.slots, slots])
            self.counts = np.concatenate([self.counts, counts])
            return
        merged = np.concatenate([self.slots, slots])
        weights = np.concatenate([self.counts, counts])
        order = np.argsort(merged, kind="stable")
        merged = merged[order]
        weights = weights[order]
        starts = np.flatnonzero(
            np.concatenate(([True], merged[1:] != merged[:-1]))
        )
        self.slots = merged[starts]
        self.counts = np.add.reduceat(weights, starts)

    def merge_urls(
        self, ts: np.ndarray, seq: np.ndarray, urls: List[str]
    ) -> None:
        """Keep the ``max_urls`` earliest (timestamp, arrival) URLs."""
        if self.max_urls <= 0 or not urls:
            return
        all_ts = np.concatenate([self.url_ts, ts])
        all_seq = np.concatenate([self.url_seq, seq])
        all_urls = self.urls + urls
        keep = np.lexsort((all_seq, all_ts))[: self.max_urls]
        self.url_ts = all_ts[keep]
        self.url_seq = all_seq[keep]
        self.urls = [all_urls[int(i)] for i in keep]

    def finalize(
        self, source: str, destination: str, time_scale: float
    ) -> ActivitySummary:
        # Same float64 expressions as _PairState.finalize, so the two
        # data planes produce bit-identical summaries.
        quantized = np.repeat(
            self.slots.astype(float) * time_scale, self.counts
        )
        order = np.lexsort((self.url_seq, self.url_ts))
        return ActivitySummary(
            source=source,
            destination=destination,
            time_scale=time_scale,
            first_timestamp=float(quantized[0]),
            intervals=np.diff(quantized),
            urls=tuple(self.urls[i] for i in order.tolist()),
        )


class ColumnarAccumulator:
    """Fold columnar chunks into per-pair activity summaries.

    The vectorized sibling of
    :class:`~repro.sources.proxy.SummaryAccumulator`: whole chunks fold
    in one pass — slot quantization, pair grouping, and per-slot counts
    are numpy array operations; Python-level work is one short loop per
    *distinct pair per chunk*, not per event.  Peak memory stays bounded
    by per-pair state exactly like the streaming object path.
    """

    def __init__(
        self,
        *,
        time_scale: float = 1.0,
        keep_urls: bool = True,
        max_urls_per_pair: int = 64,
        aggregate_entities: bool = False,
        pair_config: Optional[PairConfig] = None,
    ) -> None:
        require_positive(time_scale, "time_scale")
        require(max_urls_per_pair >= 0, "max_urls_per_pair must be non-negative")
        if pair_config is None:
            pair_config = PairConfig(
                destination_feature=(
                    "registered_domain" if aggregate_entities else "domain"
                )
            )
        self.time_scale = time_scale
        self.pair_config = pair_config
        self._max_urls = max_urls_per_pair if keep_urls else 0
        self._pairs: Dict[Tuple[str, str], _ColumnarPairState] = {}
        self._sequence = 0
        # domain-id -> registered-domain string, memoized per (table
        # identity, consumed length) so entity aggregation stays
        # vectorizable: the mapping array simply extends as the stream's
        # shared table grows.
        self._registered: Dict[int, Tuple[StringTable, List[str]]] = {}

    def __len__(self) -> int:
        """Number of distinct pairs accumulated so far."""
        return len(self._pairs)

    # -- column resolution -------------------------------------------------

    def _source_column(
        self, chunk: RecordChunk
    ) -> Tuple[np.ndarray, StringTable]:
        if self.pair_config.source_feature == "mac":
            return chunk.data["source_mac"], chunk.tables.macs
        return chunk.data["source_ip"], chunk.tables.ips

    def _destination_column(
        self, chunk: RecordChunk
    ) -> Tuple[np.ndarray, List[str]]:
        """Destination ids plus the id -> string decode list."""
        ids = chunk.data["destination"]
        table = chunk.tables.domains
        if self.pair_config.destination_feature != "registered_domain":
            return ids, table.values
        from repro.lm.domains import registered_domain

        entry = self._registered.get(id(table))
        if entry is None or entry[0] is not table:
            entry = (table, [])
            self._registered[id(table)] = entry
        _table, mapped = entry
        while len(mapped) < len(table):
            mapped.append(registered_domain(table[len(mapped)]))
        return ids, mapped

    # -- folding -----------------------------------------------------------

    def observe_chunk(self, chunk: RecordChunk) -> None:
        """Fold one columnar chunk into the per-pair state."""
        n = len(chunk)
        if n == 0:
            return
        ts = chunk.data["timestamp"]
        src_ids, src_table = self._source_column(chunk)
        dst_ids, dst_decode = self._destination_column(chunk)
        slots = np.floor(ts / self.time_scale).astype(np.int64)
        seq = self._sequence + np.arange(n, dtype=np.int64)
        self._sequence += n

        # Order the chunk by (pair, slot); run-length boundaries then
        # give every pair's slot histogram as a slice — no per-group
        # sort or np.unique call.  Log streams are normally already
        # time-ordered, in which case one stable sort by pair leaves
        # each group in (timestamp, arrival) order, serving both the
        # histogram runs and the URL sample; otherwise fall back to two
        # explicit lexsorts.
        keys = (src_ids.astype(np.int64) << 32) | dst_ids.astype(np.int64)
        max_urls = self._max_urls
        if n < 2 or not np.any(np.diff(ts) < 0):
            order = np.argsort(keys, kind="stable")
            url_order = order
        else:
            order = np.lexsort((slots, keys))
            # By (pair, timestamp, arrival), so each group's earliest-k
            # URL sample is its leading slice; group boundaries
            # coincide with the histogram ordering's (both sort
            # primarily by key).
            url_order = np.lexsort((seq, ts, keys)) if max_urls > 0 else order
        sorted_keys = keys[order]
        sorted_slots = slots[order]
        key_break = sorted_keys[1:] != sorted_keys[:-1]
        group_starts = np.flatnonzero(np.concatenate(([True], key_break)))
        group_bounds = np.append(group_starts, n)
        run_starts = np.flatnonzero(
            np.concatenate(
                ([True], key_break | (sorted_slots[1:] != sorted_slots[:-1]))
            )
        )
        run_slots = sorted_slots[run_starts]
        run_counts = np.diff(np.append(run_starts, n))
        # Each group's runs are a contiguous range of run_starts, and
        # every group start is itself a run start.
        group_runs = np.searchsorted(run_starts, group_starts)
        run_bounds = np.append(group_runs, len(run_starts))

        url_ids = chunk.data["url"]
        url_table = chunk.tables.urls
        for index in range(len(group_starts)):
            key_value = int(sorted_keys[group_starts[index]])
            pair = (
                src_table[key_value >> 32],
                dst_decode[key_value & 0xFFFFFFFF],
            )
            state = self._pairs.get(pair)
            if state is None:
                state = self._pairs[pair] = _ColumnarPairState(max_urls)
            runs = slice(run_bounds[index], run_bounds[index + 1])
            state.merge_counts(run_slots[runs], run_counts[runs])
            if max_urls > 0:
                begin = group_bounds[index]
                end = min(begin + max_urls, group_bounds[index + 1])
                pick = url_order[begin:end]
                state.merge_urls(
                    ts[pick], seq[pick], url_table.decode(url_ids[pick])
                )

    def summaries(self) -> List[ActivitySummary]:
        """Finalize every pair, ordered deterministically by pair."""
        return [
            self._pairs[pair].finalize(pair[0], pair[1], self.time_scale)
            for pair in sorted(self._pairs)
        ]


def summaries_from_chunks(
    chunks: Iterable[RecordChunk],
    *,
    time_scale: float = 1.0,
    keep_urls: bool = True,
    max_urls_per_pair: int = 64,
    aggregate_entities: bool = False,
    pair_config: Optional[PairConfig] = None,
) -> List[ActivitySummary]:
    """Group a columnar chunk stream into per-pair activity summaries.

    The chunked counterpart of
    :func:`repro.sources.proxy.records_to_summaries`, producing
    bit-identical output for the same event stream.
    """
    accumulator = ColumnarAccumulator(
        time_scale=time_scale,
        keep_urls=keep_urls,
        max_urls_per_pair=max_urls_per_pair,
        aggregate_entities=aggregate_entities,
        pair_config=pair_config,
    )
    for chunk in chunks:
        accumulator.observe_chunk(chunk)
    return accumulator.summaries()
