"""Log-source adapters feeding the pipeline's ActivitySummary stream.

The core methodology only consumes (source, destination, timestamp)
triples.  :mod:`repro.sources.proxy` is the primary path — the paper's
BlueCoat web-proxy logs, with streaming record-to-summary grouping —
while the DNS and NetFlow modules (paper Section X) adapt resolver
logs and flow records into the same stream, including the
source-specific caveats the paper discusses (DNS caching, NetFlow's
lack of names/content).  :mod:`repro.sources.columnar` is the
high-throughput twin of the proxy path: the same logs parsed into
numpy chunk arrays and folded vectorized, bit-identical to the object
path.
"""

from repro.sources.columnar import (
    CHUNK_DTYPE,
    ColumnarAccumulator,
    ColumnTables,
    RecordChunk,
    StringTable,
    chunks_to_records,
    read_log_chunks,
    records_to_chunks,
    summaries_from_chunks,
)
from repro.sources.dns import (
    DnsLogRecord,
    dns_records_to_summaries,
    dns_view_of_proxy,
)
from repro.sources.netflow import (
    NetflowRecord,
    netflow_records_to_summaries,
    netflow_view_of_proxy,
    resolve_domain,
)
from repro.sources.proxy import (
    PairConfig,
    ProxyLogRecord,
    SummaryAccumulator,
    read_log,
    records_to_summaries,
    summary_from_observations,
    write_log,
)

__all__ = [
    "CHUNK_DTYPE",
    "ColumnTables",
    "ColumnarAccumulator",
    "RecordChunk",
    "StringTable",
    "chunks_to_records",
    "read_log_chunks",
    "records_to_chunks",
    "summaries_from_chunks",
    "DnsLogRecord",
    "dns_records_to_summaries",
    "dns_view_of_proxy",
    "NetflowRecord",
    "netflow_records_to_summaries",
    "netflow_view_of_proxy",
    "resolve_domain",
    "PairConfig",
    "ProxyLogRecord",
    "SummaryAccumulator",
    "read_log",
    "records_to_summaries",
    "summary_from_observations",
    "write_log",
]
