"""Alternative data sources (paper Section X): DNS and NetFlow.

The core methodology only consumes (source, destination, timestamp)
triples; these modules adapt resolver logs and flow records into the
same ActivitySummary stream the proxy-log path produces, including the
source-specific caveats the paper discusses (DNS caching, NetFlow's
lack of names/content).
"""

from repro.sources.dns import (
    DnsLogRecord,
    dns_records_to_summaries,
    dns_view_of_proxy,
)
from repro.sources.netflow import (
    NetflowRecord,
    netflow_records_to_summaries,
    netflow_view_of_proxy,
    resolve_domain,
)

__all__ = [
    "DnsLogRecord",
    "dns_records_to_summaries",
    "dns_view_of_proxy",
    "NetflowRecord",
    "netflow_records_to_summaries",
    "netflow_view_of_proxy",
    "resolve_domain",
]
