"""DNS log source (paper Section X).

BAYWATCH's core only needs (source, destination, timestamp) triples, so
it "is applicable to other data sources such as DNS".  This module
provides the DNS side:

- :class:`DnsLogRecord` — one query log line,
- :func:`dns_records_to_summaries` — grouping into per-pair
  ActivitySummaries keyed by the *registered* domain (a bot's DGA
  churns subdomains; the registrable part is the channel),
- :func:`dns_view_of_proxy` — derive the DNS-server view of a proxy-log
  trace, modelling the two effects the paper calls out: resolver
  *caching* hides queries within the TTL window, and end hosts may sit
  behind a *local resolver* that aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.timeseries import ActivitySummary
from repro.lm.domains import registered_domain
from repro.sources.proxy import ProxyLogRecord
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class DnsLogRecord:
    """One DNS query observed at a resolver."""

    timestamp: float
    client: str
    qname: str
    qtype: str = "A"

    def to_line(self) -> str:
        """Serialize to a tab-separated log line."""
        return "\t".join(
            (f"{self.timestamp:.3f}", self.client, self.qname, self.qtype)
        )

    @classmethod
    def from_line(cls, line: str) -> "DnsLogRecord":
        """Parse a tab-separated log line."""
        parts = line.rstrip("\n").split("\t")
        require(len(parts) == 4, f"malformed DNS log line: {line!r}")
        return cls(
            timestamp=float(parts[0]),
            client=parts[1],
            qname=parts[2],
            qtype=parts[3],
        )


def dns_records_to_summaries(
    records: Iterable[DnsLogRecord],
    *,
    time_scale: float = 1.0,
    group_by_registered_domain: bool = True,
) -> List[ActivitySummary]:
    """Group DNS queries into per-(client, domain) activity summaries."""
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        name = (
            registered_domain(record.qname)
            if group_by_registered_domain
            else record.qname.lower()
        )
        grouped.setdefault((record.client, name), []).append(record.timestamp)
    summaries = [
        ActivitySummary.from_timestamps(
            client, name, timestamps, time_scale=time_scale
        )
        for (client, name), timestamps in grouped.items()
    ]
    summaries.sort(key=lambda s: s.pair)
    return summaries


def dns_view_of_proxy(
    records: Iterable[ProxyLogRecord],
    *,
    ttl: float = 300.0,
    shared_resolver: Optional[str] = None,
) -> List[DnsLogRecord]:
    """The resolver's view of a proxy-log trace.

    Each HTTP request triggers a DNS lookup **unless** the same client
    resolved the same name within the last ``ttl`` seconds (cache hit) —
    the paper's caveat that DNS "may not see every query due to
    caching".  With ``shared_resolver`` set, all clients appear as that
    one resolver (the aggregated regional-resolver view).
    """
    require_positive(ttl, "ttl")
    last_lookup: Dict[Tuple[str, str], float] = {}
    out: List[DnsLogRecord] = []
    for record in sorted(records, key=lambda r: r.timestamp):
        client = shared_resolver if shared_resolver else record.source_mac
        key = (client, record.destination)
        last = last_lookup.get(key)
        if last is not None and record.timestamp - last < ttl:
            continue
        last_lookup[key] = record.timestamp
        out.append(
            DnsLogRecord(
                timestamp=record.timestamp,
                client=client,
                qname=record.destination,
            )
        )
    return out
