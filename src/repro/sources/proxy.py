"""Proxy-log records and streaming summary construction.

The paper's raw input is BlueCoat ProxySG access logs stored in HDFS.
This module owns the proxy-log data path end to end:

- :class:`ProxyLogRecord` — one log line, with TSV (de)serialization
  (:func:`read_log` / :func:`write_log`, gzip-aware),
- :class:`PairConfig` — which endpoint features key a communication
  pair (Table I),
- :class:`SummaryAccumulator` — *streaming* per-pair accumulation: an
  ``Iterable[ProxyLogRecord]`` folds incrementally into per-pair state
  (slot-count histograms plus a capped URL sample), so building
  :class:`~repro.core.timeseries.ActivitySummary` records never
  materializes the full record list.  This is the bounded-memory
  ingestion path shared by :class:`~repro.filtering.BaywatchPipeline`,
  the sharded :class:`~repro.jobs.BaywatchRunner`, and the CLI,
- :func:`records_to_summaries` — the grouping helper, now a thin
  wrapper over the accumulator,
- :func:`summary_from_observations` — the per-pair fold used by the
  data-extraction MapReduce job (Section VII-A), so the engine path and
  the streaming path produce bit-identical summaries.

This code used to live in ``repro.synthetic.logs``; that module keeps
deprecated re-exports so old imports continue to work.
"""

from __future__ import annotations

import gzip
import heapq
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.timeseries import ActivitySummary
from repro.utils.validation import require, require_positive

__all__ = [
    "PairConfig",
    "ProxyLogRecord",
    "SummaryAccumulator",
    "read_log",
    "records_to_summaries",
    "summary_from_observations",
    "write_log",
]

_FIELDS = ("timestamp", "source_mac", "source_ip", "destination", "url", "status", "bytes_sent")

_SOURCE_FEATURES = ("mac", "ip")
_DESTINATION_FEATURES = ("domain", "registered_domain")


@dataclass(frozen=True)
class PairConfig:
    """Which endpoint features define a communication pair (Table I).

    The paper's evaluation keys pairs on (source MAC, destination
    domain): MACs survive DHCP churn where IPs do not, and domains
    survive C&C address rotation where IPs do not.  Other deployments
    key differently (no DHCP correlation available, entity-level
    aggregation wanted), so the choice is configuration:

    - ``source_feature``: ``"mac"`` (default) or ``"ip"``,
    - ``destination_feature``: ``"domain"`` (default) or
      ``"registered_domain"`` (entity aggregation for subdomain flux).
    """

    source_feature: str = "mac"
    destination_feature: str = "domain"

    def __post_init__(self) -> None:
        require(self.source_feature in _SOURCE_FEATURES,
                f"source_feature must be one of {_SOURCE_FEATURES}")
        require(self.destination_feature in _DESTINATION_FEATURES,
                f"destination_feature must be one of {_DESTINATION_FEATURES}")

    def source_of(self, record: "ProxyLogRecord") -> str:
        """The pair's source endpoint for this configuration."""
        return (
            record.source_mac
            if self.source_feature == "mac"
            else record.source_ip
        )

    def destination_of(self, record: "ProxyLogRecord") -> str:
        """The pair's destination endpoint for this configuration."""
        if self.destination_feature == "registered_domain":
            from repro.lm.domains import registered_domain

            return registered_domain(record.destination)
        return record.destination


@dataclass(frozen=True)
class ProxyLogRecord:
    """One web-proxy log line.

    ``source_mac`` is the DHCP-correlated device identity the paper
    prefers over IPs; ``destination`` is the requested domain; ``url``
    is the path+query component consumed by the token filter.
    """

    timestamp: float
    source_mac: str
    source_ip: str
    destination: str
    url: str = "/"
    status: int = 200
    bytes_sent: int = 0

    def to_line(self) -> str:
        """Serialize to a tab-separated log line."""
        return "\t".join(
            (
                f"{self.timestamp:.3f}",
                self.source_mac,
                self.source_ip,
                self.destination,
                self.url,
                str(self.status),
                str(self.bytes_sent),
            )
        )

    @classmethod
    def from_line(cls, line: str) -> "ProxyLogRecord":
        """Parse a tab-separated log line."""
        parts = line.rstrip("\n").split("\t")
        require(len(parts) == len(_FIELDS), f"malformed log line: {line!r}")
        return cls(
            timestamp=float(parts[0]),
            source_mac=parts[1],
            source_ip=parts[2],
            destination=parts[3],
            url=parts[4],
            status=int(parts[5]),
            bytes_sent=int(parts[6]),
        )


def write_log(
    records: Iterable[ProxyLogRecord],
    path: Union[str, Path],
    *,
    compress: bool = False,
) -> int:
    """Write records as TSV lines (optionally gzipped); returns the count."""
    path = Path(path)
    opener = gzip.open if compress else open
    count = 0
    with opener(path, "wt", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_line())
            handle.write("\n")
            count += 1
    return count


def read_log(path: Union[str, Path]) -> Iterator[ProxyLogRecord]:
    """Stream records back from a (possibly gzipped) TSV log file."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                yield ProxyLogRecord.from_line(line)


class _PairState:
    """Streaming state of one communication pair.

    Instead of buffering raw records, the accumulator keeps a
    slot-index -> event-count histogram (the information the quantized
    interval list is derived from) and a bounded URL sample.  Memory is
    O(distinct time slots) per pair, so a higher request *rate* over a
    fixed window costs nothing extra — the property the ingestion bench
    demonstrates.
    """

    __slots__ = ("bins", "urls", "max_urls")

    def __init__(self, max_urls: int) -> None:
        self.bins: Dict[int, int] = {}
        self.max_urls = max_urls
        # Max-heap (via negated keys) of the ``max_urls`` earliest
        # (timestamp, arrival) observations, mirroring the historical
        # "stable-sort by timestamp, take the first k" behaviour.
        self.urls: List[Tuple[float, int, str]] = []

    def observe(self, slot: int, timestamp: float, sequence: int,
                url: Optional[str]) -> None:
        self.bins[slot] = self.bins.get(slot, 0) + 1
        if url is None or self.max_urls <= 0:
            return
        entry = (-timestamp, -sequence, url)
        if len(self.urls) < self.max_urls:
            heapq.heappush(self.urls, entry)
        elif entry > self.urls[0]:
            heapq.heapreplace(self.urls, entry)

    def finalize(
        self, source: str, destination: str, time_scale: float
    ) -> ActivitySummary:
        slots = np.fromiter(self.bins.keys(), dtype=np.int64,
                            count=len(self.bins))
        counts = np.fromiter(self.bins.values(), dtype=np.int64,
                             count=len(self.bins))
        order = np.argsort(slots)
        quantized = np.repeat(
            slots[order].astype(float) * time_scale, counts[order]
        )
        ordered = sorted(
            ((-ts, -seq, url) for ts, seq, url in self.urls)
        )
        return ActivitySummary(
            source=source,
            destination=destination,
            time_scale=time_scale,
            first_timestamp=float(quantized[0]),
            intervals=np.diff(quantized),
            urls=tuple(url for _ts, _seq, url in ordered),
        )


class SummaryAccumulator:
    """Fold a record stream into per-pair activity summaries.

    Feed observations one at a time (:meth:`observe_record` /
    :meth:`observe`) and collect the resulting
    :class:`~repro.core.timeseries.ActivitySummary` records with
    :meth:`summaries`.  The output is bit-identical to the historical
    sort-then-group implementation — timestamps are quantized to
    ``time_scale`` exactly as
    :meth:`~repro.core.timeseries.ActivitySummary.from_timestamps`
    does, and same-slot URL ties resolve in arrival order — but peak
    memory is bounded by distinct (pair, time slot) combinations rather
    than by the record count.
    """

    def __init__(
        self,
        *,
        time_scale: float = 1.0,
        keep_urls: bool = True,
        max_urls_per_pair: int = 64,
        aggregate_entities: bool = False,
        pair_config: Optional[PairConfig] = None,
    ) -> None:
        require_positive(time_scale, "time_scale")
        require(max_urls_per_pair >= 0, "max_urls_per_pair must be non-negative")
        if pair_config is None:
            pair_config = PairConfig(
                destination_feature=(
                    "registered_domain" if aggregate_entities else "domain"
                )
            )
        self.time_scale = time_scale
        self.pair_config = pair_config
        self._max_urls = max_urls_per_pair if keep_urls else 0
        self._pairs: Dict[Tuple[str, str], _PairState] = {}
        self._sequence = 0

    def __len__(self) -> int:
        """Number of distinct pairs accumulated so far."""
        return len(self._pairs)

    def observe_record(self, record: ProxyLogRecord) -> None:
        """Fold one proxy-log record into the per-pair state."""
        self.observe(
            self.pair_config.source_of(record),
            self.pair_config.destination_of(record),
            record.timestamp,
            record.url,
        )

    def observe(
        self,
        source: str,
        destination: str,
        timestamp: float,
        url: Optional[str] = None,
    ) -> None:
        """Fold one (source, destination, timestamp, url) observation."""
        key = (source, destination)
        state = self._pairs.get(key)
        if state is None:
            state = self._pairs[key] = _PairState(self._max_urls)
        slot = int(np.floor(timestamp / self.time_scale))
        state.observe(slot, timestamp, self._sequence, url)
        self._sequence += 1

    def summaries(self) -> List[ActivitySummary]:
        """Finalize every pair, ordered deterministically by pair."""
        return [
            self._pairs[key].finalize(key[0], key[1], self.time_scale)
            for key in sorted(self._pairs)
        ]


def records_to_summaries(
    records: Iterable[ProxyLogRecord],
    *,
    time_scale: float = 1.0,
    keep_urls: bool = True,
    max_urls_per_pair: int = 64,
    aggregate_entities: bool = False,
    pair_config: Optional[PairConfig] = None,
) -> List[ActivitySummary]:
    """Group a flat record stream into per-pair activity summaries.

    The default communication pair is (source MAC, destination domain),
    matching the paper's evaluation configuration; ``pair_config``
    selects other Table I feature combinations.  Pairs with a single
    request carry no interval information but are still emitted
    (downstream filters need the popularity signal).

    ``records`` may be any iterable — including a lazy generator such
    as :func:`read_log` — and is consumed in one streaming pass via
    :class:`SummaryAccumulator`, so peak memory is bounded by the
    per-pair state, not the record count.

    ``aggregate_entities=True`` is shorthand for a pair config whose
    destination feature is the *registered* domain, so subdomain-fluxing
    C&C — whose per-FQDN pairs are sparse and aperiodic — reassembles
    into one beaconing pair (paper Challenge 2: a destination entity
    has many addresses).
    """
    accumulator = SummaryAccumulator(
        time_scale=time_scale,
        keep_urls=keep_urls,
        max_urls_per_pair=max_urls_per_pair,
        aggregate_entities=aggregate_entities,
        pair_config=pair_config,
    )
    for record in records:
        accumulator.observe_record(record)
    return accumulator.summaries()


def summary_from_observations(
    source: str,
    destination: str,
    observations: Iterable[Tuple[float, int, str]],
    *,
    time_scale: float = 1.0,
    max_urls: int = 64,
) -> ActivitySummary:
    """Fold one pair's ``(timestamp, sequence, url)`` observations.

    This is the reduce-side body of the data-extraction MapReduce job:
    ``sequence`` is the record's global arrival index, so URL ties
    within one time slot resolve in arrival order exactly as the
    streaming path does — the engine front end and
    :func:`records_to_summaries` produce identical summaries.
    """
    state = _PairState(max_urls)
    for timestamp, sequence, url in observations:
        slot = int(np.floor(timestamp / time_scale))
        state.observe(slot, timestamp, sequence, url)
    require(state.bins, "observations must not be empty")
    return state.finalize(source, destination, time_scale)
