"""The shared stage graph of the BAYWATCH 8-step funnel.

One step, one object: the funnel's filtering semantics live here once
and both front ends — the in-process
:class:`~repro.filtering.BaywatchPipeline` and the MapReduce-backed
:class:`~repro.jobs.BaywatchRunner` (including its sharded,
checkpointed mode) — compose the *same* stage instances over a
:class:`StageContext`.  :func:`run_stages` provides uniform funnel
accounting (:class:`~repro.filtering.pipeline.FunnelStats` rows,
telemetry spans, per-stage counters), and :func:`build_report` turns a
finished context into the shared
:class:`~repro.filtering.pipeline.PipelineReport`.

Layering: this package sits between ``repro.filtering`` (whose leaf
modules — cases, ranking math, whitelists — it builds on) and
``repro.jobs`` (which supplies distributed detection *executors* but
is never imported from here).  See ``docs/ARCHITECTURE.md``.
"""

from repro.stages.base import Stage, run_stages
from repro.stages.context import PopularityIndex, StageContext, build_report
from repro.stages.detection import (
    BatchedDetection,
    IncrementalDetection,
    InProcessDetection,
    PeriodicityDetectionStage,
    build_case,
    detect_pairs,
    detection_verdicts,
    record_detection_verdicts,
)
from repro.stages.funnel import (
    GlobalWhitelistStage,
    LocalWhitelistStage,
    MinEventsStage,
    NoveltyStage,
    RankingStage,
    TokenFilterStage,
    default_stages,
)

__all__ = [
    "Stage",
    "run_stages",
    "PopularityIndex",
    "StageContext",
    "build_report",
    "BatchedDetection",
    "IncrementalDetection",
    "InProcessDetection",
    "PeriodicityDetectionStage",
    "build_case",
    "detect_pairs",
    "detection_verdicts",
    "record_detection_verdicts",
    "GlobalWhitelistStage",
    "LocalWhitelistStage",
    "MinEventsStage",
    "NoveltyStage",
    "RankingStage",
    "TokenFilterStage",
    "default_stages",
]
