"""The stage protocol and the funnel executor.

A :class:`Stage` is one step of the BAYWATCH funnel (paper Fig. 3): it
consumes the surviving items of the previous step and emits its own
survivors.  :func:`run_stages` threads a list of stages over a
:class:`~repro.stages.context.StageContext`, recording each step's
in/out counts in the context's
:class:`~repro.filtering.pipeline.FunnelStats`, timing it under a
telemetry span named after the stage, and surfacing the counts as
``stage.<span_name>.pairs_{in,out}`` counters — so funnel semantics and
telemetry have exactly one source of truth regardless of which front
end (:class:`~repro.filtering.BaywatchPipeline` or
:class:`~repro.jobs.BaywatchRunner`) composed the stages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Sequence

from repro.obs import get_registry, journal_emit, span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.stages.context import StageContext

__all__ = ["Stage", "run_stages"]


class Stage:
    """One funnel step: a named filter/transform over the survivor list.

    Subclasses set ``name`` (the canonical funnel label, e.g.
    ``"1 global whitelist"``) and ``span_name`` (the telemetry span the
    step is timed under) and implement :meth:`apply`.
    """

    #: Canonical funnel label recorded in :class:`FunnelStats`.
    name: str = ""
    #: Telemetry span (and counter) name for this step.
    span_name: str = ""

    def apply(self, context: "StageContext", items: Sequence[Any]) -> Iterable[Any]:
        """Run the step over ``items``, returning its survivors."""
        raise NotImplementedError


def run_stages(
    context: "StageContext",
    stages: Sequence[Stage],
    items: Iterable[Any],
) -> List[Any]:
    """Apply ``stages`` in order, with funnel accounting per step.

    Each stage runs under ``span(stage.span_name)`` — nesting beneath
    whatever span the calling front end opened — and records
    ``(stage.name, n_in, n_out)`` in ``context.funnel``.
    """
    registry = get_registry()
    survivors = list(items)
    for stage in stages:
        n_in = len(survivors)
        with span(stage.span_name):
            survivors = list(stage.apply(context, survivors))
        context.funnel.record(stage.name, n_in, len(survivors))
        registry.counter(f"stage.{stage.span_name}.pairs_in").inc(n_in)
        registry.counter(f"stage.{stage.span_name}.pairs_out").inc(len(survivors))
        journal_emit(
            "stage",
            stage=stage.span_name,
            pairs_in=n_in,
            pairs_out=len(survivors),
        )
    return survivors
