"""The whitelist and suspicious-indication stages of the funnel.

Steps 1-2 (whitelist analysis) and 6-8 (suspicious indication) as
:class:`~repro.stages.base.Stage` objects, plus the min-events
prefilter that sits between the whitelists and periodicity detection.
Step bodies live *only* here: both front ends compose these instances,
so a change to one filter's semantics reaches the in-process pipeline,
the MapReduce runner, and the sharded runner at once.

When the context carries a
:class:`~repro.obs.provenance.ProvenanceRecorder`, every stage also
emits one :class:`~repro.obs.provenance.VerdictRecord` per pair it
inspects; with provenance off (the default) each stage keeps its
original single-comprehension body.

:func:`default_stages` builds the canonical eight-step sequence; front
ends inject their own detection stage (the step that differs in *where*
it executes, never in *what* it computes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.filtering.ranking import (
    percentile_cutoff,
    rank_cases,
    rank_score,
    strongest_per_destination,
)
from repro.stages.base import Stage
from repro.stages.detection import PeriodicityDetectionStage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stages.context import StageContext

__all__ = [
    "GlobalWhitelistStage",
    "LocalWhitelistStage",
    "MinEventsStage",
    "NoveltyStage",
    "RankingStage",
    "TokenFilterStage",
    "default_stages",
]


class GlobalWhitelistStage(Stage):
    """Step 1: drop destinations on the global whitelist."""

    name = "1 global whitelist"
    span_name = "step1_global_whitelist"

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[ActivitySummary]:
        """Keep pairs whose destination is not globally whitelisted."""
        whitelist = context.global_whitelist
        recorder = context.provenance
        if recorder is None:
            return [s for s in items if s.destination not in whitelist]
        kept: List[ActivitySummary] = []
        for s in items:
            hit = s.destination in whitelist
            recorder.record(
                s.source,
                s.destination,
                "global_whitelist",
                kept=not hit,
                reason="whitelist:global" if hit else "",
            )
            if not hit:
                kept.append(s)
        return kept


class LocalWhitelistStage(Stage):
    """Step 2: drop organization-wide popular destinations."""

    name = "2 local whitelist"
    span_name = "step2_local_whitelist"

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[ActivitySummary]:
        """Keep pairs below the popularity threshold (tau_p)."""
        popularity = context.popularity
        threshold = context.config.local_whitelist_threshold
        recorder = context.provenance
        if recorder is None:
            return [
                s
                for s in items
                if not popularity.is_whitelisted(s.destination, threshold)
            ]
        from repro.stages.context import MIN_WHITELIST_SOURCES

        kept: List[ActivitySummary] = []
        for s in items:
            sources = popularity.similar_sources(s.destination)
            ratio = popularity.ratio(s.destination)
            whitelisted = popularity.is_whitelisted(s.destination, threshold)
            if whitelisted:
                reason = "popularity:whitelisted"
            elif sources < MIN_WHITELIST_SOURCES:
                reason = f"popularity:sources<{MIN_WHITELIST_SOURCES}"
            else:
                reason = "popularity:ratio<=threshold"
            recorder.record(
                s.source,
                s.destination,
                "local_whitelist",
                kept=not whitelisted,
                reason=reason,
                near_miss=(
                    sources >= MIN_WHITELIST_SOURCES
                    and recorder.policy.value_near_miss(ratio, threshold)
                ),
                ratio=ratio,
                sources=sources,
                threshold=threshold,
            )
            if not whitelisted:
                kept.append(s)
        return kept


class MinEventsStage(Stage):
    """Prefilter: pairs without enough events cannot beacon."""

    #: Indented label marks this as a prefilter, not a paper step.
    name = "  (min events)"
    span_name = "min_events_prefilter"

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[ActivitySummary]:
        """Keep pairs with at least ``config.min_events`` requests."""
        min_events = context.config.min_events
        recorder = context.provenance
        if recorder is None:
            return [s for s in items if s.event_count >= min_events]
        kept: List[ActivitySummary] = []
        for s in items:
            ok = s.event_count >= min_events
            recorder.record(
                s.source,
                s.destination,
                "min_events",
                kept=ok,
                reason="" if ok else "prefilter:min_events",
                events=s.event_count,
                min_events=min_events,
            )
            if ok:
                kept.append(s)
        return kept


class TokenFilterStage(Stage):
    """Step 6: URL token analysis drops likely-benign periodic services."""

    name = "6 token filter"
    span_name = "step6_token_filter"

    def apply(
        self, context: "StageContext", items: Sequence[BeaconingCase]
    ) -> List[BeaconingCase]:
        """Keep cases whose URL sample does not look like benign polling."""
        token_filter = context.token_filter
        recorder = context.provenance
        if recorder is None:
            return [
                case
                for case in items
                if not token_filter.is_likely_benign(case.summary.urls)
            ]
        kept: List[BeaconingCase] = []
        for case in items:
            benign = token_filter.is_likely_benign(case.summary.urls)
            recorder.record(
                case.source,
                case.destination,
                "token_filter",
                kept=not benign,
                reason="token:benign_pattern" if benign else "",
            )
            if not benign:
                kept.append(case)
        return kept


class NoveltyStage(Stage):
    """Step 7: novelty analysis and per-destination consolidation.

    Suppresses destinations reported in previous runs, consolidates
    same-destination cases within this run (keeping the strongest), and
    records the survivors in the novelty store so tomorrow's run
    suppresses them in turn.
    """

    name = "7 novelty filter"
    span_name = "step7_novelty_filter"

    def apply(
        self, context: "StageContext", items: Sequence[BeaconingCase]
    ) -> List[BeaconingCase]:
        """Filter to novel destinations and consolidate per destination."""
        weights = context.config.ranking_weights
        recorder = context.provenance
        scored = [
            case.with_rank_score(rank_score(case, weights)) for case in items
        ]
        fresh: List[BeaconingCase] = []
        for case in scored:
            novel = context.novelty.is_novel(case.source, case.destination)
            if not novel and recorder is not None:
                recorder.record(
                    case.source,
                    case.destination,
                    "novelty",
                    kept=False,
                    reason="novelty:already_reported",
                )
            if novel:
                fresh.append(case)
        consolidated = strongest_per_destination(fresh)
        if recorder is not None:
            winners = {case.pair for case in consolidated}
            for case in fresh:
                won = case.pair in winners
                recorder.record(
                    case.source,
                    case.destination,
                    "novelty",
                    kept=won,
                    reason="" if won else "novelty:consolidated",
                    rank_score=case.rank_score,
                )
        for case in consolidated:
            context.novelty.record(case.source, case.destination)
        return consolidated


class RankingStage(Stage):
    """Step 8: weighted scoring and the percentile threshold."""

    name = "8 weighted ranking"
    span_name = "step8_weighted_ranking"

    def apply(
        self, context: "StageContext", items: Sequence[BeaconingCase]
    ) -> List[BeaconingCase]:
        """Score, threshold, and sort the surviving cases (best first)."""
        weights = context.config.ranking_weights
        percentile = context.config.ranking_percentile
        ranked = rank_cases(items, weights=weights, percentile=percentile)
        recorder = context.provenance
        if recorder is not None and items:
            scores = [rank_score(case, weights) for case in items]
            cutoff = percentile_cutoff(scores, percentile)
            kept_pairs = {case.pair for case in ranked}
            for case, score in zip(items, scores):
                kept = case.pair in kept_pairs
                recorder.record(
                    case.source,
                    case.destination,
                    "ranking",
                    kept=kept,
                    reason="" if kept else "rank:below_percentile",
                    near_miss=recorder.policy.value_near_miss(score, cutoff),
                    score=score,
                    cutoff=cutoff,
                )
        return ranked


def default_stages(
    detection: Optional[PeriodicityDetectionStage] = None,
) -> List[Stage]:
    """The canonical 8-step funnel as a stage list.

    ``detection`` substitutes the periodicity-detection stage (steps
    3-5) — typically to select an executor (in-process, engine-backed,
    sharded) while every other step stays shared.
    """
    return [
        GlobalWhitelistStage(),
        LocalWhitelistStage(),
        MinEventsStage(),
        detection if detection is not None else PeriodicityDetectionStage(),
        TokenFilterStage(),
        NoveltyStage(),
        RankingStage(),
    ]
