"""The whitelist and suspicious-indication stages of the funnel.

Steps 1-2 (whitelist analysis) and 6-8 (suspicious indication) as
:class:`~repro.stages.base.Stage` objects, plus the min-events
prefilter that sits between the whitelists and periodicity detection.
Step bodies live *only* here: both front ends compose these instances,
so a change to one filter's semantics reaches the in-process pipeline,
the MapReduce runner, and the sharded runner at once.

:func:`default_stages` builds the canonical eight-step sequence; front
ends inject their own detection stage (the step that differs in *where*
it executes, never in *what* it computes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.filtering.ranking import (
    rank_cases,
    rank_score,
    strongest_per_destination,
)
from repro.stages.base import Stage
from repro.stages.detection import PeriodicityDetectionStage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stages.context import StageContext

__all__ = [
    "GlobalWhitelistStage",
    "LocalWhitelistStage",
    "MinEventsStage",
    "NoveltyStage",
    "RankingStage",
    "TokenFilterStage",
    "default_stages",
]


class GlobalWhitelistStage(Stage):
    """Step 1: drop destinations on the global whitelist."""

    name = "1 global whitelist"
    span_name = "step1_global_whitelist"

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[ActivitySummary]:
        """Keep pairs whose destination is not globally whitelisted."""
        whitelist = context.global_whitelist
        return [s for s in items if s.destination not in whitelist]


class LocalWhitelistStage(Stage):
    """Step 2: drop organization-wide popular destinations."""

    name = "2 local whitelist"
    span_name = "step2_local_whitelist"

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[ActivitySummary]:
        """Keep pairs below the popularity threshold (tau_p)."""
        popularity = context.popularity
        threshold = context.config.local_whitelist_threshold
        return [
            s
            for s in items
            if not popularity.is_whitelisted(s.destination, threshold)
        ]


class MinEventsStage(Stage):
    """Prefilter: pairs without enough events cannot beacon."""

    #: Indented label marks this as a prefilter, not a paper step.
    name = "  (min events)"
    span_name = "min_events_prefilter"

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[ActivitySummary]:
        """Keep pairs with at least ``config.min_events`` requests."""
        min_events = context.config.min_events
        return [s for s in items if s.event_count >= min_events]


class TokenFilterStage(Stage):
    """Step 6: URL token analysis drops likely-benign periodic services."""

    name = "6 token filter"
    span_name = "step6_token_filter"

    def apply(
        self, context: "StageContext", items: Sequence[BeaconingCase]
    ) -> List[BeaconingCase]:
        """Keep cases whose URL sample does not look like benign polling."""
        token_filter = context.token_filter
        return [
            case
            for case in items
            if not token_filter.is_likely_benign(case.summary.urls)
        ]


class NoveltyStage(Stage):
    """Step 7: novelty analysis and per-destination consolidation.

    Suppresses destinations reported in previous runs, consolidates
    same-destination cases within this run (keeping the strongest), and
    records the survivors in the novelty store so tomorrow's run
    suppresses them in turn.
    """

    name = "7 novelty filter"
    span_name = "step7_novelty_filter"

    def apply(
        self, context: "StageContext", items: Sequence[BeaconingCase]
    ) -> List[BeaconingCase]:
        """Filter to novel destinations and consolidate per destination."""
        weights = context.config.ranking_weights
        scored = [
            case.with_rank_score(rank_score(case, weights)) for case in items
        ]
        fresh = [
            case
            for case in scored
            if context.novelty.is_novel(case.source, case.destination)
        ]
        consolidated = strongest_per_destination(fresh)
        for case in consolidated:
            context.novelty.record(case.source, case.destination)
        return consolidated


class RankingStage(Stage):
    """Step 8: weighted scoring and the percentile threshold."""

    name = "8 weighted ranking"
    span_name = "step8_weighted_ranking"

    def apply(
        self, context: "StageContext", items: Sequence[BeaconingCase]
    ) -> List[BeaconingCase]:
        """Score, threshold, and sort the surviving cases (best first)."""
        return rank_cases(
            items,
            weights=context.config.ranking_weights,
            percentile=context.config.ranking_percentile,
        )


def default_stages(
    detection: Optional[PeriodicityDetectionStage] = None,
) -> List[Stage]:
    """The canonical 8-step funnel as a stage list.

    ``detection`` substitutes the periodicity-detection stage (steps
    3-5) — typically to select an executor (in-process, engine-backed,
    sharded) while every other step stays shared.
    """
    return [
        GlobalWhitelistStage(),
        LocalWhitelistStage(),
        MinEventsStage(),
        detection if detection is not None else PeriodicityDetectionStage(),
        TokenFilterStage(),
        NoveltyStage(),
        RankingStage(),
    ]
