"""The periodicity-detection stage (funnel steps 3-5) and its executors.

Steps 3-5 — DFT candidate extraction, permutation thresholding and
pruning, ACF verification — run inside
:class:`~repro.core.PeriodicityDetector`.  The stage itself is
execution-agnostic: a pluggable *executor* maps surviving summaries to
``(summary, DetectionResult)`` pairs, which lets the same stage object
run in-process (:class:`InProcessDetection`), over a MapReduce engine,
or in checkpointed shards — the latter two executors live with the
runner in :mod:`repro.jobs.runner`, keeping this package free of job
dependencies.

:func:`detect_pairs` is the single detection loop both the in-process
executor and the detection MapReduce job's reduce task share, and
:func:`build_case` is the single enrichment point turning a detection
into a :class:`~repro.filtering.case.BeaconingCase` (popularity,
similar sources, LM score).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.detector import DetectionResult, PeriodicityDetector
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.obs.provenance import (
    ProvenancePolicy,
    ProvenanceRecorder,
    VerdictRecord,
    clean_values,
)
from repro.stages.base import Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stages.context import StageContext

__all__ = [
    "BatchedDetection",
    "DetectionExecutor",
    "IncrementalDetection",
    "InProcessDetection",
    "PeriodicityDetectionStage",
    "build_case",
    "detect_pairs",
    "detection_verdicts",
    "record_detection_verdicts",
]

#: Early-screen rejection codes (see PeriodicityDetector._screen); the
#: whole pair is decided before any spectrum exists.
_EARLY_CODES = frozenset(
    ["spectral:min_events", "spectral:single_slot", "spectral:window_too_short"]
)


def detection_verdicts(
    source: str,
    destination: str,
    result: DetectionResult,
    policy: ProvenancePolicy,
) -> List[VerdictRecord]:
    """Verdict records for funnel steps 3-5, derived from one result.

    A pure function of the (extended) :class:`DetectionResult`, so the
    serial detector, the batched fast path, and a sharded worker that
    round-tripped the result through a checkpoint all produce the exact
    same chain.
    """
    records: List[VerdictRecord] = []

    def rec(
        stage: str,
        kept: bool,
        reason: str = "",
        near_miss: bool = False,
        **values: Any,
    ) -> None:
        records.append(
            VerdictRecord(
                source=source,
                destination=destination,
                stage=stage,
                kept=kept,
                reason=reason,
                near_miss=near_miss,
                values=clean_values(values),
            )
        )

    if result.rejection_code in _EARLY_CODES:
        rec(
            "spectral",
            False,
            result.rejection_code,
            events=result.n_events,
            duration=result.duration,
        )
        return records

    threshold = result.power_threshold
    margin = result.spectral_margin
    if not result.periodic and result.n_candidates_raw == 0:
        rec(
            "spectral",
            False,
            "spectral:power<threshold",
            near_miss=policy.margin_near_miss(margin, threshold),
            threshold=threshold,
            margin=margin,
        )
        return records
    rec(
        "spectral",
        True,
        threshold=threshold,
        margin=margin,
        candidates=result.n_candidates_raw,
    )
    if not result.periodic and result.n_candidates_pruned == 0:
        rec("pruning", False, "pruning:rejected",
            candidates=result.n_candidates_raw)
        return records
    rec(
        "pruning",
        True,
        candidates_in=result.n_candidates_raw,
        candidates_out=result.n_candidates_pruned,
    )
    if not result.periodic:
        rec("acf", False, "acf:below_min_score",
            candidates=result.n_candidates_pruned)
        return records
    dominant = result.dominant
    rec(
        "acf",
        True,
        acf_score=dominant.acf_score,
        period=dominant.period,
        p_value=dominant.p_value,
        periods=[candidate.period for candidate in result.candidates],
    )
    return records


def record_detection_verdicts(
    recorder: ProvenanceRecorder,
    pairs: Iterable[Tuple[ActivitySummary, DetectionResult]],
) -> None:
    """Fold detection verdicts for fully known (summary, result) pairs."""
    for summary, result in pairs:
        recorder.extend(
            detection_verdicts(
                summary.source, summary.destination, result, recorder.policy
            )
        )

#: An executor maps (context, summaries) to the detected
#: ``(summary, result)`` pairs plus any quarantined units.
DetectionExecutor = Callable[
    ["StageContext", List[ActivitySummary]],
    Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]],
]


def detect_pairs(
    detector: PeriodicityDetector, summaries: Iterable[ActivitySummary]
) -> Iterator[Tuple[ActivitySummary, DetectionResult]]:
    """Run the detector over summaries, yielding the periodic ones.

    The one detection loop shared by the in-process executor and the
    MapReduce detection job's reduce task.
    """
    for summary in summaries:
        result = detector.detect_summary(summary)
        if result.periodic:
            yield summary, result


def build_case(
    context: "StageContext",
    summary: ActivitySummary,
    detection: DetectionResult,
) -> BeaconingCase:
    """Enrich one detection into a :class:`BeaconingCase`.

    Attaches the ranking indicators computed from shared run state:
    destination popularity and similar-source count from the context's
    :class:`~repro.stages.context.PopularityIndex` and the normalized
    language-model score from the (lazily built) scorer.
    """
    destination = summary.destination
    return BeaconingCase(
        summary=summary,
        detection=detection,
        popularity=context.popularity.ratio(destination),
        similar_sources=context.popularity.similar_sources(destination),
        lm_score=context.scorer.normalized_score(destination),
    )


class InProcessDetection:
    """Default executor: run the detector serially in this process.

    Pass a prebuilt detector to share a warm
    :class:`~repro.core.permutation.ThresholdCache` across runs;
    otherwise one is built (once) from the context's config and cache.
    """

    def __init__(self, detector: Optional[PeriodicityDetector] = None) -> None:
        self._detector = detector

    def __call__(
        self, context: "StageContext", summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        """Detect every summary; nothing is ever quarantined in-process."""
        if self._detector is None:
            self._detector = PeriodicityDetector(
                context.config.detector,
                threshold_cache=context.threshold_cache,
            )
        recorder = context.provenance
        if recorder is None:
            return list(detect_pairs(self._detector, summaries)), []
        detected: List[Tuple[ActivitySummary, DetectionResult]] = []
        for summary in summaries:
            result = self._detector.detect_summary(summary)
            record_detection_verdicts(recorder, [(summary, result)])
            if result.periodic:
                detected.append((summary, result))
        return detected, []


class BatchedDetection:
    """Executor running the shape-grouped batched fast path in-process.

    Feeds the surviving pairs through
    :class:`~repro.core.batch.BatchedDetector` in chunks of
    ``batch_size``, amortizing the per-pair FFT/ACF dispatch across the
    batch.  Batch size 1 reproduces :class:`InProcessDetection` bit for
    bit (enforced by the parity suite), so the knob trades nothing but
    peak memory for throughput.
    """

    def __init__(
        self,
        detector: Optional[PeriodicityDetector] = None,
        *,
        batch_size: int = 256,
        workers: Optional[int] = None,
    ) -> None:
        self._detector = detector
        self.batch_size = batch_size
        self.workers = workers

    def __call__(
        self, context: "StageContext", summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        """Detect every summary in batches; nothing is quarantined."""
        from repro.core.batch import BatchedDetector

        if self._detector is None:
            self._detector = PeriodicityDetector(
                context.config.detector,
                threshold_cache=context.threshold_cache,
            )
        batched = BatchedDetector(
            self._detector, batch_size=self.batch_size, workers=self.workers
        )
        results = batched.detect_summaries(list(summaries))
        if context.provenance is not None:
            record_detection_verdicts(
                context.provenance, zip(summaries, results)
            )
        return (
            [
                (summary, result)
                for summary, result in zip(summaries, results)
                if result.periodic
            ],
            [],
        )


class IncrementalDetection:
    """Executor that reuses sliding-DFT spectral states across ticks.

    Wraps an :class:`~repro.core.incremental.IncrementalSpectralEngine`:
    each call slides every pair's per-scale window states forward by the
    new data (instead of recomputing periodograms from scratch), screens
    the pairs against the permutation threshold on the maintained
    spectra, and runs the full batched detector only on screen
    survivors.  The screen has two stages: pairs below the
    (margin-shaded) permutation threshold at every maintained scale are
    rejected outright (they cannot produce a spectral candidate), and
    pairs above it are *probed* — candidate pruning and ACF
    verification run directly on the maintained windows and spectra —
    so only pairs with a verified grid candidate pay for the full
    event-anchored detection (including its GMM fit).

    The engine's state cache persists via :meth:`save_state` /
    :meth:`load_state` (the runner stores it in the checkpoint
    directory next to ``threshold-cache.json``), so sharded and resumed
    runs start warm.  A persisted cache whose fingerprint does not
    match the current detector configuration is discarded, never
    trusted.

    Requirements: the detector must use binary signals and a
    :class:`~repro.core.permutation.ThresholdCache` (the screen keys
    thresholds on signal shape).  When either is missing the executor
    degrades to plain :class:`BatchedDetection` behaviour.
    """

    def __init__(
        self,
        detector: Optional[PeriodicityDetector] = None,
        *,
        batch_size: int = 256,
        workers: Optional[int] = None,
        config: Optional[Any] = None,
        state_path: Optional[Any] = None,
    ) -> None:
        self._detector = detector
        self.batch_size = batch_size
        self.workers = workers
        self._incremental_config = config
        self.state_path = state_path
        self._engine: Optional[Any] = None
        self._fingerprint = ""

    # -- engine lifecycle --------------------------------------------------

    @staticmethod
    def fingerprint_for(detector_config: Any, time_scale: float) -> str:
        """The compatibility fingerprint warm state is bound to."""
        return f"incremental:v1:scale={time_scale!r}:{detector_config!r}"

    def _ensure_engine(
        self, context: "StageContext", time_scale: float
    ) -> Any:
        from repro.core.incremental import (
            IncrementalSpectralEngine,
            IncrementalStateCache,
            IncrementalStateMismatch,
        )

        cfg = context.config.detector
        fingerprint = self.fingerprint_for(cfg, time_scale)
        if self._engine is not None and self._fingerprint == fingerprint:
            return self._engine
        cache = None
        if self.state_path is not None:
            try:
                cache = IncrementalStateCache.load(
                    self.state_path,
                    fingerprint=fingerprint,
                    config=self._incremental_config,
                )
            except FileNotFoundError:
                cache = None
            except (IncrementalStateMismatch, ValueError, OSError):
                # Stale or incompatible warm state: start cold.
                from repro.obs.registry import get_registry

                get_registry().counter(
                    "detector.incremental.state_rejected"
                ).inc()
                cache = None
        self._engine = IncrementalSpectralEngine(
            context.threshold_cache,
            time_scale=time_scale,
            scale_factor=cfg.scale_factor,
            max_scales=cfg.max_scales,
            min_slots=cfg.min_slots,
            max_signal_length=cfg.max_signal_length,
            config=self._incremental_config,
            fingerprint=fingerprint,
            cache=cache,
        )
        self._fingerprint = fingerprint
        return self._engine

    @property
    def engine(self) -> Optional[Any]:
        """The live spectral engine (None before the first call)."""
        return self._engine

    def save_state(self, path: Optional[Any] = None) -> Optional[Any]:
        """Persist the engine's state cache; returns the written path."""
        target = path if path is not None else self.state_path
        if self._engine is None or target is None:
            return None
        return self._engine.cache.save(target)

    # -- execution ---------------------------------------------------------

    def __call__(
        self, context: "StageContext", summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        """Slide states, screen, and fully detect only screen survivors."""
        from repro.core.incremental import DAY
        from repro.obs import span
        from repro.obs.registry import get_registry

        cfg = context.config.detector
        if not summaries:
            return [], []
        if not cfg.binary_signal or context.threshold_cache is None:
            # The screen needs shape-keyed thresholds; degrade to the
            # plain batched executor rather than guessing.
            fallback = BatchedDetection(
                self._detector, batch_size=self.batch_size,
                workers=self.workers,
            )
            return fallback(context, summaries)
        if self._detector is None:
            self._detector = PeriodicityDetector(
                cfg, threshold_cache=context.threshold_cache
            )
        registry = get_registry()
        with span("detect.incremental"):
            # The engine ladder starts where the cold per-summary ladder
            # would: at the coarsest summary granularity of the batch
            # (cadences rescale uniformly, so normally they all match).
            time_scale = max(
                cfg.time_scale, max(s.time_scale for s in summaries)
            )
            engine = self._ensure_engine(context, time_scale)
            first = min(s.first_timestamp for s in summaries)
            last = max(s.first_timestamp + s.duration for s in summaries)
            start_day = int(first // DAY)
            end_day = int(last // DAY) + 1
            engine.begin_tick(start_day, end_day)

            results: List[Optional[DetectionResult]] = [None] * len(summaries)
            survivors: List[int] = []
            with span("detect.incremental.screen"):
                for index, summary in enumerate(summaries):
                    detector = self._detector.for_time_scale(
                        summary.time_scale
                    )
                    ts = summary.timestamps()
                    early, _prepared = detector._screen(ts)
                    if early is not None:
                        results[index] = early
                        continue
                    verdict = engine.observe(
                        summary.source, summary.destination, ts
                    )
                    if not verdict.passed:
                        results[index] = DetectionResult(
                            periodic=False,
                            candidates=(),
                            power_threshold=verdict.threshold,
                            n_events=int(ts.size),
                            duration=float(ts[-1] - ts[0]),
                            time_scale=detector.config.time_scale,
                            scales=verdict.scales,
                            rejection_reason=(
                                "incremental screen: spectrum below the "
                                "permutation threshold at every scale"
                            ),
                            rejection_code="spectral:power<threshold",
                            spectral_margin=verdict.margin,
                        )
                        continue
                    # Candidate probe: pruning + ACF verification run
                    # directly on the maintained grid windows/spectra.
                    # Only a pair with a verified grid candidate pays
                    # for full event-anchored detection (with its GMM
                    # fit); the bar and the filters are the detector's
                    # own, just fed prebinned signals.
                    plan = detector.screen_plan(ts)
                    shaded = engine.config.screen_margin
                    probed = False
                    states = dict(
                        engine.rung_states(
                            summary.source, summary.destination
                        )
                    )
                    for scale, max_power, threshold in verdict.rung_stats:
                        state = states.get(scale)
                        if state is None or max_power <= shaded * threshold:
                            continue
                        if detector.probe_prebinned(
                            plan, scale, state.window, state.power(),
                            threshold,
                        ):
                            probed = True
                            break
                    if probed:
                        survivors.append(index)
                        continue
                    registry.counter(
                        "detector.incremental.probe_rejected"
                    ).inc()
                    if plan.n_raw == 0:
                        reason = (
                            "incremental probe: no spectral candidate "
                            "above the permutation threshold"
                        )
                        code = "spectral:power<threshold"
                    elif plan.n_pruned == 0:
                        reason = (
                            "incremental probe: every candidate pruned"
                        )
                        code = "pruning:rejected"
                    else:
                        reason = (
                            "incremental probe: no candidate survived "
                            "ACF verification"
                        )
                        code = "acf:below_min_score"
                    results[index] = DetectionResult(
                        periodic=False,
                        candidates=(),
                        power_threshold=verdict.threshold,
                        n_events=int(ts.size),
                        duration=float(ts[-1] - ts[0]),
                        time_scale=detector.config.time_scale,
                        scales=verdict.scales,
                        rejection_reason=reason,
                        rejection_code=code,
                        n_candidates_raw=plan.n_raw,
                        n_candidates_pruned=plan.n_pruned,
                        spectral_margin=verdict.margin,
                    )
            engine.end_tick()
            registry.gauge("detector.incremental.state_cache_size").set(
                len(engine.cache)
            )
            if survivors:
                from repro.core.batch import BatchedDetector

                with span("detect.incremental.full"):
                    batched = BatchedDetector(
                        self._detector,
                        batch_size=self.batch_size,
                        workers=self.workers,
                    )
                    full = batched.detect_summaries(
                        [summaries[index] for index in survivors]
                    )
                for index, result in zip(survivors, full):
                    results[index] = result
            if self.state_path is not None:
                self.save_state()
        if context.provenance is not None:
            record_detection_verdicts(
                context.provenance, zip(summaries, results)
            )
        return (
            [
                (summary, result)
                for summary, result in zip(summaries, results)
                if result is not None and result.periodic
            ],
            [],
        )


class PeriodicityDetectionStage(Stage):
    """Funnel steps 3-5: periodicity detection plus case enrichment.

    The executor decides *where* detection runs; the stage owns the
    invariant parts — quarantine collection, case enrichment via
    :func:`build_case`, deterministic pair ordering, and publishing the
    detected list on the context for the run report.
    """

    name = "3-5 periodicity detection"
    span_name = "step3_5_periodicity_detection"

    def __init__(self, executor: Optional[DetectionExecutor] = None) -> None:
        self.executor = executor if executor is not None else InProcessDetection()

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[BeaconingCase]:
        """Detect the surviving pairs and enrich the periodic ones."""
        results, quarantined = self.executor(context, list(items))
        context.quarantined.extend(quarantined)
        cases = [
            build_case(context, summary, detection)
            for summary, detection in results
        ]
        cases.sort(key=lambda case: case.pair)
        context.detected = cases
        return cases
