"""The periodicity-detection stage (funnel steps 3-5) and its executors.

Steps 3-5 — DFT candidate extraction, permutation thresholding and
pruning, ACF verification — run inside
:class:`~repro.core.PeriodicityDetector`.  The stage itself is
execution-agnostic: a pluggable *executor* maps surviving summaries to
``(summary, DetectionResult)`` pairs, which lets the same stage object
run in-process (:class:`InProcessDetection`), over a MapReduce engine,
or in checkpointed shards — the latter two executors live with the
runner in :mod:`repro.jobs.runner`, keeping this package free of job
dependencies.

:func:`detect_pairs` is the single detection loop both the in-process
executor and the detection MapReduce job's reduce task share, and
:func:`build_case` is the single enrichment point turning a detection
into a :class:`~repro.filtering.case.BeaconingCase` (popularity,
similar sources, LM score).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.detector import DetectionResult, PeriodicityDetector
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.obs.provenance import (
    ProvenancePolicy,
    ProvenanceRecorder,
    VerdictRecord,
    clean_values,
)
from repro.stages.base import Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stages.context import StageContext

__all__ = [
    "BatchedDetection",
    "DetectionExecutor",
    "InProcessDetection",
    "PeriodicityDetectionStage",
    "build_case",
    "detect_pairs",
    "detection_verdicts",
    "record_detection_verdicts",
]

#: Early-screen rejection codes (see PeriodicityDetector._screen); the
#: whole pair is decided before any spectrum exists.
_EARLY_CODES = frozenset(
    ["spectral:min_events", "spectral:single_slot", "spectral:window_too_short"]
)


def detection_verdicts(
    source: str,
    destination: str,
    result: DetectionResult,
    policy: ProvenancePolicy,
) -> List[VerdictRecord]:
    """Verdict records for funnel steps 3-5, derived from one result.

    A pure function of the (extended) :class:`DetectionResult`, so the
    serial detector, the batched fast path, and a sharded worker that
    round-tripped the result through a checkpoint all produce the exact
    same chain.
    """
    records: List[VerdictRecord] = []

    def rec(
        stage: str,
        kept: bool,
        reason: str = "",
        near_miss: bool = False,
        **values: Any,
    ) -> None:
        records.append(
            VerdictRecord(
                source=source,
                destination=destination,
                stage=stage,
                kept=kept,
                reason=reason,
                near_miss=near_miss,
                values=clean_values(values),
            )
        )

    if result.rejection_code in _EARLY_CODES:
        rec(
            "spectral",
            False,
            result.rejection_code,
            events=result.n_events,
            duration=result.duration,
        )
        return records

    threshold = result.power_threshold
    margin = result.spectral_margin
    if not result.periodic and result.n_candidates_raw == 0:
        rec(
            "spectral",
            False,
            "spectral:power<threshold",
            near_miss=policy.margin_near_miss(margin, threshold),
            threshold=threshold,
            margin=margin,
        )
        return records
    rec(
        "spectral",
        True,
        threshold=threshold,
        margin=margin,
        candidates=result.n_candidates_raw,
    )
    if not result.periodic and result.n_candidates_pruned == 0:
        rec("pruning", False, "pruning:rejected",
            candidates=result.n_candidates_raw)
        return records
    rec(
        "pruning",
        True,
        candidates_in=result.n_candidates_raw,
        candidates_out=result.n_candidates_pruned,
    )
    if not result.periodic:
        rec("acf", False, "acf:below_min_score",
            candidates=result.n_candidates_pruned)
        return records
    dominant = result.dominant
    rec(
        "acf",
        True,
        acf_score=dominant.acf_score,
        period=dominant.period,
        p_value=dominant.p_value,
        periods=[candidate.period for candidate in result.candidates],
    )
    return records


def record_detection_verdicts(
    recorder: ProvenanceRecorder,
    pairs: Iterable[Tuple[ActivitySummary, DetectionResult]],
) -> None:
    """Fold detection verdicts for fully known (summary, result) pairs."""
    for summary, result in pairs:
        recorder.extend(
            detection_verdicts(
                summary.source, summary.destination, result, recorder.policy
            )
        )

#: An executor maps (context, summaries) to the detected
#: ``(summary, result)`` pairs plus any quarantined units.
DetectionExecutor = Callable[
    ["StageContext", List[ActivitySummary]],
    Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]],
]


def detect_pairs(
    detector: PeriodicityDetector, summaries: Iterable[ActivitySummary]
) -> Iterator[Tuple[ActivitySummary, DetectionResult]]:
    """Run the detector over summaries, yielding the periodic ones.

    The one detection loop shared by the in-process executor and the
    MapReduce detection job's reduce task.
    """
    for summary in summaries:
        result = detector.detect_summary(summary)
        if result.periodic:
            yield summary, result


def build_case(
    context: "StageContext",
    summary: ActivitySummary,
    detection: DetectionResult,
) -> BeaconingCase:
    """Enrich one detection into a :class:`BeaconingCase`.

    Attaches the ranking indicators computed from shared run state:
    destination popularity and similar-source count from the context's
    :class:`~repro.stages.context.PopularityIndex` and the normalized
    language-model score from the (lazily built) scorer.
    """
    destination = summary.destination
    return BeaconingCase(
        summary=summary,
        detection=detection,
        popularity=context.popularity.ratio(destination),
        similar_sources=context.popularity.similar_sources(destination),
        lm_score=context.scorer.normalized_score(destination),
    )


class InProcessDetection:
    """Default executor: run the detector serially in this process.

    Pass a prebuilt detector to share a warm
    :class:`~repro.core.permutation.ThresholdCache` across runs;
    otherwise one is built (once) from the context's config and cache.
    """

    def __init__(self, detector: Optional[PeriodicityDetector] = None) -> None:
        self._detector = detector

    def __call__(
        self, context: "StageContext", summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        """Detect every summary; nothing is ever quarantined in-process."""
        if self._detector is None:
            self._detector = PeriodicityDetector(
                context.config.detector,
                threshold_cache=context.threshold_cache,
            )
        recorder = context.provenance
        if recorder is None:
            return list(detect_pairs(self._detector, summaries)), []
        detected: List[Tuple[ActivitySummary, DetectionResult]] = []
        for summary in summaries:
            result = self._detector.detect_summary(summary)
            record_detection_verdicts(recorder, [(summary, result)])
            if result.periodic:
                detected.append((summary, result))
        return detected, []


class BatchedDetection:
    """Executor running the shape-grouped batched fast path in-process.

    Feeds the surviving pairs through
    :class:`~repro.core.batch.BatchedDetector` in chunks of
    ``batch_size``, amortizing the per-pair FFT/ACF dispatch across the
    batch.  Batch size 1 reproduces :class:`InProcessDetection` bit for
    bit (enforced by the parity suite), so the knob trades nothing but
    peak memory for throughput.
    """

    def __init__(
        self,
        detector: Optional[PeriodicityDetector] = None,
        *,
        batch_size: int = 256,
        workers: Optional[int] = None,
    ) -> None:
        self._detector = detector
        self.batch_size = batch_size
        self.workers = workers

    def __call__(
        self, context: "StageContext", summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        """Detect every summary in batches; nothing is quarantined."""
        from repro.core.batch import BatchedDetector

        if self._detector is None:
            self._detector = PeriodicityDetector(
                context.config.detector,
                threshold_cache=context.threshold_cache,
            )
        batched = BatchedDetector(
            self._detector, batch_size=self.batch_size, workers=self.workers
        )
        results = batched.detect_summaries(list(summaries))
        if context.provenance is not None:
            record_detection_verdicts(
                context.provenance, zip(summaries, results)
            )
        return (
            [
                (summary, result)
                for summary, result in zip(summaries, results)
                if result.periodic
            ],
            [],
        )


class PeriodicityDetectionStage(Stage):
    """Funnel steps 3-5: periodicity detection plus case enrichment.

    The executor decides *where* detection runs; the stage owns the
    invariant parts — quarantine collection, case enrichment via
    :func:`build_case`, deterministic pair ordering, and publishing the
    detected list on the context for the run report.
    """

    name = "3-5 periodicity detection"
    span_name = "step3_5_periodicity_detection"

    def __init__(self, executor: Optional[DetectionExecutor] = None) -> None:
        self.executor = executor if executor is not None else InProcessDetection()

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[BeaconingCase]:
        """Detect the surviving pairs and enrich the periodic ones."""
        results, quarantined = self.executor(context, list(items))
        context.quarantined.extend(quarantined)
        cases = [
            build_case(context, summary, detection)
            for summary, detection in results
        ]
        cases.sort(key=lambda case: case.pair)
        context.detected = cases
        return cases
