"""The periodicity-detection stage (funnel steps 3-5) and its executors.

Steps 3-5 — DFT candidate extraction, permutation thresholding and
pruning, ACF verification — run inside
:class:`~repro.core.PeriodicityDetector`.  The stage itself is
execution-agnostic: a pluggable *executor* maps surviving summaries to
``(summary, DetectionResult)`` pairs, which lets the same stage object
run in-process (:class:`InProcessDetection`), over a MapReduce engine,
or in checkpointed shards — the latter two executors live with the
runner in :mod:`repro.jobs.runner`, keeping this package free of job
dependencies.

:func:`detect_pairs` is the single detection loop both the in-process
executor and the detection MapReduce job's reduce task share, and
:func:`build_case` is the single enrichment point turning a detection
into a :class:`~repro.filtering.case.BeaconingCase` (popularity,
similar sources, LM score).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.detector import DetectionResult, PeriodicityDetector
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.stages.base import Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stages.context import StageContext

__all__ = [
    "BatchedDetection",
    "DetectionExecutor",
    "InProcessDetection",
    "PeriodicityDetectionStage",
    "build_case",
    "detect_pairs",
]

#: An executor maps (context, summaries) to the detected
#: ``(summary, result)`` pairs plus any quarantined units.
DetectionExecutor = Callable[
    ["StageContext", List[ActivitySummary]],
    Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]],
]


def detect_pairs(
    detector: PeriodicityDetector, summaries: Iterable[ActivitySummary]
) -> Iterator[Tuple[ActivitySummary, DetectionResult]]:
    """Run the detector over summaries, yielding the periodic ones.

    The one detection loop shared by the in-process executor and the
    MapReduce detection job's reduce task.
    """
    for summary in summaries:
        result = detector.detect_summary(summary)
        if result.periodic:
            yield summary, result


def build_case(
    context: "StageContext",
    summary: ActivitySummary,
    detection: DetectionResult,
) -> BeaconingCase:
    """Enrich one detection into a :class:`BeaconingCase`.

    Attaches the ranking indicators computed from shared run state:
    destination popularity and similar-source count from the context's
    :class:`~repro.stages.context.PopularityIndex` and the normalized
    language-model score from the (lazily built) scorer.
    """
    destination = summary.destination
    return BeaconingCase(
        summary=summary,
        detection=detection,
        popularity=context.popularity.ratio(destination),
        similar_sources=context.popularity.similar_sources(destination),
        lm_score=context.scorer.normalized_score(destination),
    )


class InProcessDetection:
    """Default executor: run the detector serially in this process.

    Pass a prebuilt detector to share a warm
    :class:`~repro.core.permutation.ThresholdCache` across runs;
    otherwise one is built (once) from the context's config and cache.
    """

    def __init__(self, detector: Optional[PeriodicityDetector] = None) -> None:
        self._detector = detector

    def __call__(
        self, context: "StageContext", summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        """Detect every summary; nothing is ever quarantined in-process."""
        if self._detector is None:
            self._detector = PeriodicityDetector(
                context.config.detector,
                threshold_cache=context.threshold_cache,
            )
        return list(detect_pairs(self._detector, summaries)), []


class BatchedDetection:
    """Executor running the shape-grouped batched fast path in-process.

    Feeds the surviving pairs through
    :class:`~repro.core.batch.BatchedDetector` in chunks of
    ``batch_size``, amortizing the per-pair FFT/ACF dispatch across the
    batch.  Batch size 1 reproduces :class:`InProcessDetection` bit for
    bit (enforced by the parity suite), so the knob trades nothing but
    peak memory for throughput.
    """

    def __init__(
        self,
        detector: Optional[PeriodicityDetector] = None,
        *,
        batch_size: int = 256,
        workers: Optional[int] = None,
    ) -> None:
        self._detector = detector
        self.batch_size = batch_size
        self.workers = workers

    def __call__(
        self, context: "StageContext", summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        """Detect every summary in batches; nothing is quarantined."""
        from repro.core.batch import BatchedDetector

        if self._detector is None:
            self._detector = PeriodicityDetector(
                context.config.detector,
                threshold_cache=context.threshold_cache,
            )
        batched = BatchedDetector(
            self._detector, batch_size=self.batch_size, workers=self.workers
        )
        results = batched.detect_summaries(list(summaries))
        return (
            [
                (summary, result)
                for summary, result in zip(summaries, results)
                if result.periodic
            ],
            [],
        )


class PeriodicityDetectionStage(Stage):
    """Funnel steps 3-5: periodicity detection plus case enrichment.

    The executor decides *where* detection runs; the stage owns the
    invariant parts — quarantine collection, case enrichment via
    :func:`build_case`, deterministic pair ordering, and publishing the
    detected list on the context for the run report.
    """

    name = "3-5 periodicity detection"
    span_name = "step3_5_periodicity_detection"

    def __init__(self, executor: Optional[DetectionExecutor] = None) -> None:
        self.executor = executor if executor is not None else InProcessDetection()

    def apply(
        self, context: "StageContext", items: Sequence[ActivitySummary]
    ) -> List[BeaconingCase]:
        """Detect the surviving pairs and enrich the periodic ones."""
        results, quarantined = self.executor(context, list(items))
        context.quarantined.extend(quarantined)
        cases = [
            build_case(context, summary, detection)
            for summary, detection in results
        ]
        cases.sort(key=lambda case: case.pair)
        context.detected = cases
        return cases
