"""Shared per-run state threaded through the funnel stages.

:class:`StageContext` carries everything the eight steps consult —
the :class:`~repro.filtering.pipeline.PipelineConfig`, the global and
local (popularity) whitelists, the
:class:`~repro.core.permutation.ThresholdCache`, the
:class:`~repro.filtering.novelty.NoveltyStore`, the
:class:`~repro.filtering.tokens.TokenFilter`, and the lazily built
:class:`~repro.lm.domains.DomainScorer` — plus the run's outputs: the
:class:`~repro.filtering.pipeline.FunnelStats`, the detected cases,
and any quarantined units.

:class:`PopularityIndex` is the local-whitelist substrate: destination
popularity as seen by *this run's* summaries, built either in-process
(:meth:`PopularityIndex.from_summaries`) or from the popularity
MapReduce job's output tables (:meth:`PopularityIndex.from_counts`).
Both constructions implement the same rule as
:class:`~repro.filtering.whitelist.LocalWhitelist`: a destination is
whitelisted when at least ``min_sources`` distinct sources contact it
and its population fraction exceeds the configured threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.permutation import ThresholdCache
from repro.filtering.case import BeaconingCase
from repro.filtering.novelty import NoveltyStore
from repro.filtering.pipeline import FunnelStats, PipelineConfig, PipelineReport
from repro.filtering.tokens import TokenFilter
from repro.filtering.whitelist import GlobalWhitelist
from repro.lm.domains import DomainScorer, default_scorer
from repro.obs.provenance import ProvenanceRecorder

__all__ = ["PopularityIndex", "StageContext", "build_report"]

#: Small-population guard shared with LocalWhitelist: a destination
#: needs at least this many distinct sources before popularity alone
#: can whitelist it.
MIN_WHITELIST_SOURCES = 3


class PopularityIndex:
    """Destination popularity over one run's source population."""

    def __init__(self, counts: Optional[Dict[str, int]] = None,
                 population: int = 0) -> None:
        self._counts = dict(counts or {})
        self.population = int(population)

    @classmethod
    def from_summaries(cls, summaries: Iterable[Any]) -> "PopularityIndex":
        """Build the index in one pass over activity summaries."""
        sources_by_destination: Dict[str, set] = {}
        population = set()
        for summary in summaries:
            sources_by_destination.setdefault(
                summary.destination, set()
            ).add(summary.source)
            population.add(summary.source)
        counts = {
            destination: len(sources)
            for destination, sources in sources_by_destination.items()
        }
        return cls(counts, len(population))

    @classmethod
    def from_counts(
        cls, counts: Dict[str, int], population: int
    ) -> "PopularityIndex":
        """Wrap the popularity MapReduce job's output tables."""
        return cls(counts, population)

    def similar_sources(self, destination: str) -> int:
        """Distinct sources contacting ``destination`` (Table II)."""
        return self._counts.get(destination, 0)

    def ratio(self, destination: str) -> float:
        """Fraction of the source population contacting ``destination``."""
        if not self.population:
            return 0.0
        return self._counts.get(destination, 0) / self.population

    def is_whitelisted(self, destination: str, threshold: float) -> bool:
        """The local-whitelist rule (paper Section VII-C)."""
        return (
            self.similar_sources(destination) >= MIN_WHITELIST_SOURCES
            and self.ratio(destination) > threshold
        )


@dataclass
class StageContext:
    """Everything one funnel run reads and writes.

    Front ends build one context per run from their long-lived
    components (whitelists, novelty store, token filter, scorer,
    threshold cache) and hand it to
    :func:`~repro.stages.base.run_stages`; the stages leave the run's
    funnel accounting, detected cases, and quarantine list behind on
    the same object.
    """

    config: PipelineConfig = field(default_factory=PipelineConfig)
    global_whitelist: GlobalWhitelist = field(default_factory=GlobalWhitelist)
    novelty: NoveltyStore = field(default_factory=NoveltyStore)
    token_filter: TokenFilter = field(default_factory=TokenFilter)
    threshold_cache: Optional[ThresholdCache] = None
    popularity: PopularityIndex = field(default_factory=PopularityIndex)
    funnel: FunnelStats = field(default_factory=FunnelStats)
    #: Built by the detection stage: every periodic pair, enriched.
    detected: List[BeaconingCase] = field(default_factory=list)
    #: Poison-pill units a fault-tolerant executor dropped.
    quarantined: List[Any] = field(default_factory=list)
    #: Decision-provenance recorder; None (the default) disables
    #: per-pair verdict records entirely.
    provenance: Optional[ProvenanceRecorder] = None
    #: Builds the LM scorer on first use (training takes ~1 s).
    scorer_factory: Callable[[], DomainScorer] = default_scorer
    _scorer: Optional[DomainScorer] = field(default=None, repr=False)

    @property
    def scorer(self) -> DomainScorer:
        """The domain LM scorer (built lazily via ``scorer_factory``)."""
        if self._scorer is None:
            self._scorer = self.scorer_factory()
        return self._scorer


def build_report(
    context: StageContext, ranked: List[BeaconingCase]
) -> PipelineReport:
    """Assemble the run report from a finished context.

    Both front ends produce their :class:`PipelineReport` through this
    single helper, so report semantics (detected vs. ranked cases,
    population, quarantine) cannot drift between them.
    """
    return PipelineReport(
        ranked_cases=list(ranked),
        detected_cases=list(context.detected),
        funnel=context.funnel,
        population_size=context.popularity.population,
        quarantined=list(context.quarantined),
        provenance=(
            context.provenance.drain()
            if context.provenance is not None
            else []
        ),
    )
