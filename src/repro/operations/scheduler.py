"""Multi-timescale operation (paper Section X).

BAYWATCH runs "iteratively in intervals at three time scales (daily,
weekly, monthly)": the daily pass at fine granularity catches
minute-level beaconing, while the weekly/monthly passes — over rescaled
and merged summaries, never reprocessed raw logs — expose slow beacons
(e.g. 24-hour periodicity) that a single day cannot contain.

:class:`MultiTimescaleOperator` implements the loop: feed it one day of
proxy-log records at a time; it extracts summaries once, runs the daily
pipeline immediately, and fires the coarser cadences when their windows
complete.  A single novelty store spans all cadences, so a destination
reported daily is not re-reported weekly.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.timeseries import ActivitySummary, merge, merge_rescaled, rescale
from repro.filtering.novelty import NoveltyStore
from repro.filtering.pipeline import BaywatchPipeline, PipelineConfig, PipelineReport
from repro.jobs.summary_store import SummaryStore
from repro.obs import get_registry, span
from repro.sources.columnar import ColumnTables, records_to_chunks, summaries_from_chunks
from repro.sources.proxy import ProxyLogRecord
from repro.utils.validation import require, require_positive

logger = logging.getLogger(__name__)

DAY = 86_400.0


@dataclass(frozen=True)
class Cadence:
    """One operating rhythm: how often, over how many days, how coarse."""

    name: str
    every_days: int
    window_days: int
    time_scale: float

    def __post_init__(self) -> None:
        require(self.every_days >= 1, "every_days must be at least 1")
        require(self.window_days >= 1, "window_days must be at least 1")
        require_positive(self.time_scale, "time_scale")


#: The paper's three rhythms, scaled to per-day feeding.
DEFAULT_CADENCES: Tuple[Cadence, ...] = (
    Cadence("daily", every_days=1, window_days=1, time_scale=1.0),
    Cadence("weekly", every_days=7, window_days=7, time_scale=60.0),
    Cadence("monthly", every_days=30, window_days=30, time_scale=600.0),
)


class MultiTimescaleOperator:
    """Run the pipeline at several cadences over a day-fed record stream."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        cadences: Tuple[Cadence, ...] = DEFAULT_CADENCES,
        novelty: Optional[NoveltyStore] = None,
        store: Optional[SummaryStore] = None,
        chunk_size: int = 65_536,
    ) -> None:
        require(len(cadences) >= 1, "at least one cadence is required")
        require_positive(chunk_size, "chunk_size")
        self.config = config or PipelineConfig()
        self.cadences = cadences
        self.novelty = novelty if novelty is not None else NoveltyStore()
        self.store = store
        self.chunk_size = chunk_size
        # In-memory window buffer, bounded by the longest cadence
        # window (before this bound, _daily_summaries grew with run
        # length; a quarter of monthly operation held 90 days of
        # summaries that no cadence could ever read again).
        self._retain_days = max(c.window_days for c in cadences)
        self._daily_summaries: List[List[ActivitySummary]] = []
        self._days_fed = 0
        # String-interning tables shared across days so the columnar
        # ingest path does not re-intern the same hosts every day.
        self._tables = ColumnTables()
        self._merge_workspace: Optional[np.ndarray] = None
        self._pipelines: Dict[str, BaywatchPipeline] = {
            cadence.name: BaywatchPipeline(self.config, novelty=self.novelty)
            for cadence in cadences
        }
        self.runs: List[Tuple[str, int, PipelineReport]] = []

    @property
    def days_fed(self) -> int:
        """How many days of traffic have been ingested."""
        return self._days_fed

    def _window_summaries(self, cadence: Cadence) -> List[ActivitySummary]:
        """Rescale and merge the cadence's trailing window of summaries."""
        window = self._daily_summaries[-cadence.window_days:]
        grouped: Dict[Tuple[str, str], List[ActivitySummary]] = {}
        for day in window:
            for summary in day:
                grouped.setdefault(summary.pair, []).append(summary)
        merged: List[ActivitySummary] = []
        for group in grouped.values():
            if any(s.time_scale > cadence.time_scale for s in group):
                # Already-coarser summaries cannot be fused down;
                # keep the copying composition for this (rare) shape.
                merged.append(
                    merge([
                        rescale(s, cadence.time_scale)
                        if s.time_scale < cadence.time_scale
                        else s
                        for s in group
                    ])
                )
                continue
            total = sum(s.event_count for s in group)
            if self._merge_workspace is None or self._merge_workspace.size < total:
                self._merge_workspace = np.empty(total, dtype=float)
            merged.append(
                merge_rescaled(
                    group, cadence.time_scale, out=self._merge_workspace
                )
            )
        return merged

    def ingest_day(
        self, records: Iterable[ProxyLogRecord]
    ) -> List[Tuple[str, PipelineReport]]:
        """Feed one day of records; returns the cadence runs it fired.

        Raw records are extracted into summaries exactly once (the
        paper's no-reprocessing property) through the columnar chunk
        path; coarser cadences consume fused rescale-merges of the
        buffered summaries.  When a :class:`SummaryStore` was supplied,
        each day is also persisted (``replace=True``, so re-feeding a
        day after a crash is idempotent) and days older than the
        longest cadence window are evicted.
        """
        registry = get_registry()
        with span("operations.ingest_day"):
            summaries = summaries_from_chunks(
                records_to_chunks(
                    records, chunk_size=self.chunk_size, tables=self._tables
                ),
                time_scale=self.config.time_scale,
            )
        day_index0 = self._days_fed  # 0-based index of the day just fed
        self._daily_summaries.append(summaries)
        if len(self._daily_summaries) > self._retain_days:
            del self._daily_summaries[: -self._retain_days]
        if self.store is not None:
            self.store.append_day(day_index0, summaries, replace=True)
            self.store.evict_before(day_index0 - self._retain_days + 1)
        self._days_fed += 1
        day_index = self._days_fed
        registry.gauge("operations.days_fed").set(day_index)
        fired: List[Tuple[str, PipelineReport]] = []
        for cadence in self.cadences:
            if day_index % cadence.every_days != 0:
                continue
            with span(f"operations.cadence.{cadence.name}"):
                window = (
                    summaries
                    if cadence.window_days == 1 and cadence.time_scale
                    == self.config.time_scale
                    else self._window_summaries(cadence)
                )
                report = self._pipelines[cadence.name].run_summaries(window)
            registry.counter(f"operations.cadence.{cadence.name}.runs").inc()
            logger.info(
                "cadence %s fired on day %d: %d pairs in window, "
                "%d cases reported",
                cadence.name, day_index, len(window),
                len(report.ranked_cases),
            )
            self.runs.append((cadence.name, day_index, report))
            fired.append((cadence.name, report))
        return fired

    def reported_destinations(self) -> List[str]:
        """All destinations reported so far, in first-report order."""
        seen: List[str] = []
        for _cadence, _day, report in self.runs:
            for case in report.ranked_cases:
                if case.destination not in seen:
                    seen.append(case.destination)
        return seen
