"""Operational deployment: multi-timescale iterative runs (Section X)."""

from repro.operations.scheduler import (
    DAY,
    DEFAULT_CADENCES,
    Cadence,
    MultiTimescaleOperator,
)

__all__ = [
    "DAY",
    "DEFAULT_CADENCES",
    "Cadence",
    "MultiTimescaleOperator",
]
