"""BAYWATCH reproduction — robust beaconing detection (DSN 2016).

Public API highlights:

- :class:`repro.core.PeriodicityDetector` — the core detection algorithm
  (DFT + permutation threshold, pruning, ACF verification, GMM
  multi-period analysis),
- :class:`repro.filtering.BaywatchPipeline` — the 8-step filtering
  methodology end-to-end,
- :class:`repro.jobs.BaywatchRunner` — the same methodology as chained
  MapReduce jobs over :class:`repro.mapreduce.MapReduceEngine`,
- :mod:`repro.synthetic` — enterprise traffic generation with implanted
  beacons and ground truth,
- :class:`repro.analysis.Investigator` — bootstrap case classification
  with a random forest and uncertainty-ordered review.
"""

from repro.core import (
    ActivitySummary,
    CandidatePeriod,
    DetectionResult,
    DetectorConfig,
    PeriodicityDetector,
)
from repro.filtering import (
    BaywatchPipeline,
    BeaconingCase,
    PipelineConfig,
    PipelineReport,
)

__version__ = "1.0.0"

__all__ = [
    "ActivitySummary",
    "CandidatePeriod",
    "DetectionResult",
    "DetectorConfig",
    "PeriodicityDetector",
    "BaywatchPipeline",
    "BeaconingCase",
    "PipelineConfig",
    "PipelineReport",
    "__version__",
]
