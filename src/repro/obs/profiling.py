"""Span-level profiling hooks: attribute latency to code.

The PR-1 telemetry measures *where time goes between spans*; this module
answers the follow-up question — *which code inside a span is hot*.  Two
collectors are supported:

- ``cprofile`` — deterministic function profiling via :mod:`cProfile`;
  hotspots are the top-N functions by own-time (tottime).
- ``tracemalloc`` — allocation profiling via snapshot diffing; hotspots
  are the top-N source lines by net allocated size.

Profiles attach to spans (:func:`repro.obs.span` with ``profile=...``)
or blanket-enable via the ``REPRO_PROFILE`` environment variable
(``cprofile`` or ``tracemalloc``; ``REPRO_PROFILE_TOPN`` bounds the
hotspot list, default 10).  Completed profiles accumulate in a small
module-level store that :func:`repro.obs.export.write_telemetry` drains
into ``profiles.jsonl`` in the telemetry directory; ``repro stats
--profile`` renders them, and ``repro bench --profile`` uses the same
collectors for a per-benchmark hotspot pass.

cProfile cannot nest (enabling a second profiler on a thread raises),
so with blanket profiling only the *outermost* span of each thread
collects — which is the whole-run profile you want anyway.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import threading
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "PROFILE_KINDS",
    "SpanProfile",
    "profile_mode",
    "profile_top_n",
    "start_collector",
    "record_profile",
    "pending_profiles",
    "drain_profiles",
    "clear_profiles",
    "render_profiles",
    "profiles_to_jsonl",
    "profiles_from_jsonl",
]

#: Supported values of ``REPRO_PROFILE`` / ``span(profile=...)``.
PROFILE_KINDS = ("cprofile", "tracemalloc")

_TOPN_DEFAULT = 10

_store_lock = threading.Lock()
_store: List["SpanProfile"] = []
_cprofile_active = threading.local()


@dataclass(frozen=True)
class SpanProfile:
    """Top-N hotspots collected while one span (or benchmark) ran.

    ``hotspots`` entries are plain dicts so the profile serializes as-is:
    cProfile rows carry ``site``/``calls``/``tottime``/``cumtime``,
    tracemalloc rows carry ``site``/``size_kb``/``count``.
    """

    path: str
    kind: str
    seconds: float
    hotspots: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "kind": self.kind,
            "seconds": self.seconds,
            "hotspots": list(self.hotspots),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanProfile":
        return cls(
            path=str(payload["path"]),
            kind=str(payload["kind"]),
            seconds=float(payload.get("seconds", 0.0)),
            hotspots=list(payload.get("hotspots", [])),
        )


def profile_mode() -> Optional[str]:
    """The blanket profiling kind from ``REPRO_PROFILE`` (None if unset).

    Unrecognized values are treated as off rather than crashing a run
    whose only mistake is a typo in an env var.
    """
    value = os.environ.get("REPRO_PROFILE", "").strip().lower()
    return value if value in PROFILE_KINDS else None


def profile_top_n() -> int:
    """Hotspot list length, from ``REPRO_PROFILE_TOPN`` (default 10)."""
    raw = os.environ.get("REPRO_PROFILE_TOPN", "").strip()
    try:
        value = int(raw)
    except ValueError:
        return _TOPN_DEFAULT
    return value if value >= 1 else _TOPN_DEFAULT


def _short_site(filename: str, lineno: int, func: str = "") -> str:
    parts = filename.replace("\\", "/").rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    site = f"{short}:{lineno}"
    return f"{site}:{func}" if func else site


class _CProfileCollector:
    """Deterministic profiler over one block; top-N by own time."""

    kind = "cprofile"

    def __init__(self, top_n: int) -> None:
        self._top_n = top_n
        self._profiler = cProfile.Profile()
        self._profiler.enable()
        _cprofile_active.on = True

    def stop(self) -> List[Dict[str, Any]]:
        self._profiler.disable()
        _cprofile_active.on = False
        stats = pstats.Stats(self._profiler)
        rows = []
        for (filename, lineno, func), row in stats.stats.items():  # type: ignore[attr-defined]
            _cc, ncalls, tottime, cumtime, _callers = row
            rows.append(
                {
                    "site": _short_site(filename, lineno, func),
                    "calls": int(ncalls),
                    "tottime": float(tottime),
                    "cumtime": float(cumtime),
                }
            )
        rows.sort(key=lambda r: r["tottime"], reverse=True)
        return rows[: self._top_n]


class _TracemallocCollector:
    """Allocation snapshot diff over one block; top-N by net size."""

    kind = "tracemalloc"

    def __init__(self, top_n: int) -> None:
        self._top_n = top_n
        self._started = not tracemalloc.is_tracing()
        if self._started:
            tracemalloc.start()
        self._before = tracemalloc.take_snapshot()

    def stop(self) -> List[Dict[str, Any]]:
        after = tracemalloc.take_snapshot()
        diffs = after.compare_to(self._before, "lineno")
        if self._started:
            tracemalloc.stop()
        rows = []
        for diff in diffs[: self._top_n]:
            frame = diff.traceback[0]
            rows.append(
                {
                    "site": _short_site(frame.filename, frame.lineno),
                    "size_kb": diff.size_diff / 1024.0,
                    "count": int(diff.count_diff),
                }
            )
        return rows


def start_collector(kind: str, *, top_n: Optional[int] = None):
    """Start a hotspot collector of ``kind``; ``.stop()`` returns rows.

    Returns ``None`` when the kind is unknown, or when a cProfile
    collector is already active on this thread (cProfile cannot nest).
    """
    n = top_n if top_n is not None else profile_top_n()
    if kind == "cprofile":
        if getattr(_cprofile_active, "on", False):
            return None
        return _CProfileCollector(n)
    if kind == "tracemalloc":
        return _TracemallocCollector(n)
    return None


# -- module-level profile store ---------------------------------------------


def record_profile(profile: SpanProfile) -> None:
    """Append one completed profile to the pending store."""
    with _store_lock:
        _store.append(profile)


def pending_profiles() -> List[SpanProfile]:
    """The profiles collected so far (without clearing them)."""
    with _store_lock:
        return list(_store)


def drain_profiles() -> List[SpanProfile]:
    """Return all pending profiles and clear the store."""
    with _store_lock:
        drained = list(_store)
        _store.clear()
    return drained


def clear_profiles() -> None:
    """Discard pending profiles (test isolation)."""
    with _store_lock:
        _store.clear()


# -- rendering and (de)serialization ----------------------------------------


def render_profiles(profiles: List[SpanProfile]) -> str:
    """Human-readable hotspot tables, one block per profile."""
    if not profiles:
        return "(no profiles recorded)\n"
    lines: List[str] = []
    for profile in profiles:
        lines.append(
            f"-- profile [{profile.kind}] {profile.path} "
            f"({profile.seconds * 1e3:.1f} ms) --"
        )
        if not profile.hotspots:
            lines.append("  (no hotspots)")
        elif profile.kind == "cprofile":
            lines.append(
                f"  {'tottime':>9s} {'cumtime':>9s} {'calls':>8s}  site"
            )
            for row in profile.hotspots:
                lines.append(
                    f"  {row['tottime']:9.4f} {row['cumtime']:9.4f} "
                    f"{row['calls']:>8d}  {row['site']}"
                )
        else:
            lines.append(f"  {'size_kb':>10s} {'count':>8s}  site")
            for row in profile.hotspots:
                lines.append(
                    f"  {row['size_kb']:10.1f} {row['count']:>8d}  "
                    f"{row['site']}"
                )
        lines.append("")
    return "\n".join(lines)


def profiles_to_jsonl(profiles: List[SpanProfile]) -> str:
    """One JSON object per profile, one per line."""
    return "".join(
        json.dumps(profile.to_dict(), sort_keys=True) + "\n"
        for profile in profiles
    )


def profiles_from_jsonl(text: str) -> List[SpanProfile]:
    """Inverse of :func:`profiles_to_jsonl`."""
    profiles = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            profiles.append(SpanProfile.from_dict(json.loads(line)))
    return profiles
