"""Decision provenance: per-pair verdict records for the BAYWATCH funnel.

Aggregate funnel counts (``FunnelStats``) say how many pairs each step
dropped; they cannot answer the analyst's actual question — *why did this
(host, dest) pair get flagged, or silently disappear at step 4?*  This
module holds the decision-level layer:

``VerdictRecord``
    One stage decision for one (source, destination) pair: stage name,
    kept/dropped, a machine-readable reason (``whitelist:global``,
    ``popularity:sources<3``, ``spectral:power<threshold``, ...) and the
    governing numbers (score, threshold, margin, candidate periods).

``ProvenancePolicy``
    The sampling policy bounding overhead: survivors and near-misses are
    always recorded in full; early drops are kept for a deterministic
    hash-based sample of pairs so that every executor (serial, batched,
    sharded workers) selects exactly the same pairs.

``ProvenanceRecorder``
    Accumulates per-pair verdict chains while a run executes and applies
    the storage policy when a chain closes (pair dropped) or the run ends
    (pair survived).

The JSONL store helpers mirror the event journal: records carry a schema
version, torn trailing lines (a writer killed mid-record) are tolerated,
and records from a *newer* schema raise :class:`ProvenanceSchemaError`
with a one-line message instead of a traceback.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "PROVENANCE_FILE",
    "PROVENANCE_SCHEMA_VERSION",
    "STAGE_ORDER",
    "STAGE_STEPS",
    "STAGE_TITLES",
    "ProvenancePolicy",
    "ProvenanceRecorder",
    "ProvenanceSchemaError",
    "VerdictRecord",
    "audit_report",
    "chain_outcome",
    "diff_runs",
    "group_chains",
    "read_provenance",
    "records_from_jsonl",
    "records_to_jsonl",
    "render_audit",
    "render_diff",
    "render_explain",
    "write_provenance",
]

PROVENANCE_SCHEMA_VERSION = 1

#: Merged store filename (checkpoint dir or ``--provenance`` dir).
PROVENANCE_FILE = "provenance.jsonl"

#: Per-shard store filename pattern inside a checkpoint dir.
PROVENANCE_SHARD_PATTERN = "provenance-%05d.jsonl"

# Funnel stages in decision order.  The step labels match the paper's
# 8-step numbering; the min-events prefilter is an implementation detail
# sitting between steps 2 and 3, shown as step "-".
_STAGES: Tuple[Tuple[str, str, str], ...] = (
    ("global_whitelist", "1", "global whitelist"),
    ("local_whitelist", "2", "local (popularity) whitelist"),
    ("min_events", "-", "min-events prefilter"),
    ("spectral", "3", "spectral candidates (DFT)"),
    ("pruning", "4", "candidate pruning"),
    ("acf", "5", "ACF verification"),
    ("token_filter", "6", "URL token filter"),
    ("novelty", "7", "novelty + consolidation"),
    ("ranking", "8", "weighted ranking"),
)

STAGE_ORDER: Dict[str, int] = {name: i for i, (name, _, _) in enumerate(_STAGES)}
STAGE_STEPS: Dict[str, str] = {name: step for name, step, _ in _STAGES}
STAGE_TITLES: Dict[str, str] = {name: title for name, _, title in _STAGES}


class ProvenanceSchemaError(ValueError):
    """A provenance record is corrupt or from a newer schema version."""


def _clean_value(value: Any) -> Any:
    """Coerce a verdict value into something JSON-stable.

    Non-finite floats become ``None`` so that a live record compares
    equal to its JSON round trip (JSON has no NaN/Infinity).
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (list, tuple)):
        return [_clean_value(item) for item in value]
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        return str(value)
    return as_float if math.isfinite(as_float) else None


def clean_values(values: Mapping[str, Any]) -> Dict[str, Any]:
    """Sanitise a values mapping for storage in a :class:`VerdictRecord`."""
    return {str(key): _clean_value(value) for key, value in values.items()}


@dataclass(frozen=True)
class VerdictRecord:
    """One funnel-stage decision for one (source, destination) pair."""

    source: str
    destination: str
    stage: str
    kept: bool
    reason: str = ""
    near_miss: bool = False
    values: Dict[str, Any] = field(default_factory=dict)

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.source, self.destination)

    @property
    def step(self) -> str:
        """The paper's step label ("1".."8", or "-" for prefilters)."""
        return STAGE_STEPS.get(self.stage, "?")

    @property
    def order(self) -> int:
        return STAGE_ORDER.get(self.stage, len(STAGE_ORDER))

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "v": PROVENANCE_SCHEMA_VERSION,
            "source": self.source,
            "destination": self.destination,
            "stage": self.stage,
            "step": self.step,
            "kept": self.kept,
        }
        if self.reason:
            payload["reason"] = self.reason
        if self.near_miss:
            payload["near_miss"] = True
        if self.values:
            payload["values"] = self.values
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "VerdictRecord":
        version = payload.get("v")
        if isinstance(version, int) and version > PROVENANCE_SCHEMA_VERSION:
            raise ProvenanceSchemaError(
                f"provenance record has schema v{version} but this build reads "
                f"v{PROVENANCE_SCHEMA_VERSION} or older; upgrade repro to read it"
            )
        try:
            return cls(
                source=str(payload["source"]),
                destination=str(payload["destination"]),
                stage=str(payload["stage"]),
                kept=bool(payload["kept"]),
                reason=str(payload.get("reason", "")),
                near_miss=bool(payload.get("near_miss", False)),
                values=dict(payload.get("values", {})),
            )
        except KeyError as exc:
            raise ProvenanceSchemaError(
                f"corrupt provenance record: missing field {exc.args[0]!r}"
            ) from exc


def pair_sample_key(source: str, destination: str) -> float:
    """Deterministic uniform-[0, 1) key for a pair.

    Hash-based so every executor — serial, batched, a sharded worker on
    another machine — selects exactly the same sampled pairs.
    """
    digest = hashlib.sha256(
        source.encode("utf-8", "surrogatepass")
        + b"\x00"
        + destination.encode("utf-8", "surrogatepass")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class ProvenancePolicy:
    """Sampling policy bounding provenance overhead.

    Survivor chains are always stored in full.  Chains dropped along the
    way are stored when any decision in them was a *near miss* (within
    ``near_miss_epsilon``, relative, of the governing threshold) or when
    the pair falls into the deterministic ``sample_early_drops`` sample.
    The policy is a frozen dataclass so it pickles into MapReduce jobs
    and participates in the run fingerprint via ``repr``.
    """

    sample_early_drops: float = 0.05
    near_miss_epsilon: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_early_drops <= 1.0:
            raise ValueError(
                f"sample_early_drops must be in [0, 1], "
                f"got {self.sample_early_drops}"
            )
        if self.near_miss_epsilon < 0.0:
            raise ValueError(
                f"near_miss_epsilon must be >= 0, got {self.near_miss_epsilon}"
            )

    def pair_sampled(self, source: str, destination: str) -> bool:
        """Is this pair in the deterministic early-drop sample?"""
        if self.sample_early_drops <= 0.0:
            return False
        return pair_sample_key(source, destination) < self.sample_early_drops

    def value_near_miss(self, value: float, cutoff: float) -> bool:
        """Was ``value`` within epsilon (relative) of ``cutoff``?"""
        if not (math.isfinite(value) and math.isfinite(cutoff)):
            return False
        scale = max(abs(cutoff), 1.0)
        return abs(value - cutoff) <= self.near_miss_epsilon * scale

    def margin_near_miss(self, margin: float, threshold: float) -> bool:
        """Was a spectral power margin (max power - threshold) a near miss?"""
        if not (math.isfinite(margin) and math.isfinite(threshold)):
            return False
        scale = max(abs(threshold), 1.0)
        return abs(margin) <= self.near_miss_epsilon * scale


class ProvenanceRecorder:
    """Accumulates verdict chains and applies the storage policy.

    A chain stays *open* while its pair keeps surviving stages.  A
    ``kept=False`` record closes the chain: it is stored when the chain
    holds a near miss or the pair is in the deterministic sample,
    otherwise it is forgotten.  Chains still open at :meth:`drain` time
    are survivors and always stored.
    """

    def __init__(self, policy: Optional[ProvenancePolicy] = None) -> None:
        self.policy = policy if policy is not None else ProvenancePolicy()
        self._chains: Dict[Tuple[str, str], List[VerdictRecord]] = {}
        self._stored: List[VerdictRecord] = []
        self._lock = threading.Lock()

    def record(
        self,
        source: str,
        destination: str,
        stage: str,
        *,
        kept: bool,
        reason: str = "",
        near_miss: bool = False,
        **values: Any,
    ) -> None:
        """Append one decision to the pair's chain."""
        self.extend([
            VerdictRecord(
                source=source,
                destination=destination,
                stage=stage,
                kept=kept,
                reason=reason,
                near_miss=near_miss,
                values=clean_values(values),
            )
        ])

    def extend(self, records: Iterable[VerdictRecord]) -> None:
        """Fold prebuilt records in; a ``kept=False`` record closes its chain."""
        with self._lock:
            for record in records:
                chain = self._chains.setdefault(record.pair, [])
                chain.append(record)
                if not record.kept:
                    self._close(record.pair)

    def _close(self, pair: Tuple[str, str]) -> None:
        chain = self._chains.pop(pair, None)
        if not chain:
            return
        if any(r.near_miss for r in chain) or self.policy.pair_sampled(*pair):
            self._stored.extend(chain)

    def discard(self, source: str, destination: str) -> None:
        """Forget a pair whose fate was decided outside the policy.

        Sharded executors call this for pairs a worker chose not to ship
        records for — by construction those pairs are neither sampled nor
        near misses, so an in-process run would not have stored them
        either.
        """
        with self._lock:
            self._chains.pop((source, destination), None)

    def required_pairs(self) -> FrozenSet[Tuple[str, str]]:
        """Open-chain pairs that MUST keep full records (near misses so far).

        Shipped into sharded detection jobs so workers return the
        detector's verdict even when the pair is not in the sample.
        """
        with self._lock:
            return frozenset(
                pair
                for pair, chain in self._chains.items()
                if any(r.near_miss for r in chain)
            )

    def drain(self) -> List[VerdictRecord]:
        """Flush open chains as survivors and return the canonical store.

        Records are sorted by (source, destination, stage order) so every
        executor produces an identical store for the same input.
        """
        with self._lock:
            for pair in sorted(self._chains):
                self._stored.extend(self._chains.pop(pair))
            out = self._stored
            self._stored = []
        out.sort(key=lambda r: (r.source, r.destination, r.order))
        return out


# ---------------------------------------------------------------------------
# JSONL store
# ---------------------------------------------------------------------------


def records_to_jsonl(records: Iterable[VerdictRecord]) -> str:
    """Serialise records, one JSON object per line."""
    lines = [json.dumps(r.to_dict(), sort_keys=True) for r in records]
    return "".join(line + "\n" for line in lines)


def records_from_jsonl(text: str) -> List[VerdictRecord]:
    """Parse a provenance JSONL document.

    Undecodable lines (a writer killed mid-record leaves a torn trailing
    line) are skipped; structurally corrupt or newer-schema records raise
    :class:`ProvenanceSchemaError` with a one-line message.
    """
    records: List[VerdictRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue  # torn line
        if not isinstance(payload, dict):
            continue
        records.append(VerdictRecord.from_dict(payload))
    return records


def write_provenance(path: Path, records: Iterable[VerdictRecord]) -> Path:
    """Atomically write a provenance store (tmp + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(records_to_jsonl(records), encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_provenance(path: Path) -> List[VerdictRecord]:
    """Read a provenance store from a file or a checkpoint directory.

    A directory is resolved to its merged ``provenance.jsonl`` when
    present, otherwise to the sorted union of its per-shard
    ``provenance-*.jsonl`` files (a run that was interrupted before the
    final merge).
    """
    path = Path(path)
    if path.is_dir():
        merged = path / PROVENANCE_FILE
        if merged.exists():
            path = merged
        else:
            shards = sorted(path.glob("provenance-*.jsonl"))
            if not shards:
                raise FileNotFoundError(
                    f"no provenance records under {path} (expected "
                    f"{PROVENANCE_FILE} or provenance-*.jsonl)"
                )
            records: List[VerdictRecord] = []
            for shard in shards:
                records.extend(
                    records_from_jsonl(shard.read_text(encoding="utf-8"))
                )
            records.sort(key=lambda r: (r.source, r.destination, r.order))
            return records
    if not path.exists():
        raise FileNotFoundError(f"no provenance records at {path}")
    return records_from_jsonl(path.read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# Analytics: explain / audit / diff
# ---------------------------------------------------------------------------


def group_chains(
    records: Iterable[VerdictRecord],
) -> Dict[Tuple[str, str], List[VerdictRecord]]:
    """Group records into per-pair chains, each in stage order."""
    chains: Dict[Tuple[str, str], List[VerdictRecord]] = {}
    for record in records:
        chains.setdefault(record.pair, []).append(record)
    for chain in chains.values():
        chain.sort(key=lambda r: r.order)
    return chains


def chain_outcome(chain: List[VerdictRecord]) -> Tuple[str, str]:
    """Summarise a chain as ``(outcome, detail)``.

    ``("reported", "")`` for a pair that survived the whole funnel,
    ``("dropped", stage)`` for a pair dropped at ``stage``, and
    ``("undecided", stage)`` for a partial chain (e.g. an interrupted
    run) whose last recorded stage is ``stage``.
    """
    if not chain:
        return ("undecided", "")
    last = chain[-1]
    if not last.kept:
        return ("dropped", last.stage)
    if last.stage == "ranking":
        return ("reported", "")
    return ("undecided", last.stage)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, list):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    return str(value)


def _format_values(values: Mapping[str, Any]) -> str:
    return " ".join(f"{k}={_format_value(v)}" for k, v in sorted(values.items()))


def render_explain(chain: List[VerdictRecord]) -> str:
    """Render one pair's verdict chain as an ASCII table."""
    if not chain:
        return "(no records)"
    source, destination = chain[0].pair
    lines = [f"verdict chain for ({source}, {destination})"]
    for record in chain:
        mark = "PASS" if record.kept else "DROP"
        title = STAGE_TITLES.get(record.stage, record.stage)
        line = f"  step {record.step:>2}  {mark}  {title:<30}"
        detail = []
        if record.reason:
            detail.append(record.reason)
        if record.near_miss:
            detail.append("(near miss)")
        if record.values:
            detail.append(_format_values(record.values))
        if detail:
            line += "  " + "  ".join(detail)
        lines.append(line.rstrip())
    outcome, stage = chain_outcome(chain)
    if outcome == "reported":
        lines.append("  => REPORTED (survived all 8 steps)")
    elif outcome == "dropped":
        lines.append(
            f"  => DROPPED at step {STAGE_STEPS.get(stage, '?')} "
            f"({STAGE_TITLES.get(stage, stage)})"
        )
    else:
        lines.append(f"  => UNDECIDED (last recorded stage: {stage or 'none'})")
    return "\n".join(lines)


def audit_report(records: List[VerdictRecord]) -> Dict[str, Any]:
    """Aggregate decision analytics over a provenance store."""
    from repro.obs.registry import MetricsRegistry

    chains = group_chains(records)
    stages: Dict[str, Dict[str, Any]] = {}
    registry = MetricsRegistry()
    near_misses: List[Dict[str, Any]] = []
    outcomes = {"reported": 0, "dropped": 0, "undecided": 0}

    for pair, chain in sorted(chains.items()):
        outcome, _stage = chain_outcome(chain)
        outcomes[outcome] += 1
        for record in chain:
            row = stages.setdefault(
                record.stage,
                {"kept": 0, "dropped": 0, "reasons": {}},
            )
            if record.kept:
                row["kept"] += 1
            else:
                row["dropped"] += 1
            if record.reason:
                reasons = row["reasons"]
                reasons[record.reason] = reasons.get(record.reason, 0) + 1
            if record.near_miss:
                near_misses.append(
                    {
                        "source": record.source,
                        "destination": record.destination,
                        "stage": record.stage,
                        "kept": record.kept,
                        "values": record.values,
                    }
                )
            for key in ("score", "cutoff", "threshold", "margin", "acf_score"):
                value = record.values.get(key)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    registry.histogram(
                        f"provenance.{record.stage}.{key}"
                    ).observe(float(value))

    distributions = {
        hist.name.split("provenance.", 1)[1]: {
            "count": hist.count,
            "mean": hist.mean,
            **hist.percentiles(),
        }
        for hist in registry.histograms()
    }
    ordered_stages = dict(
        sorted(stages.items(), key=lambda kv: STAGE_ORDER.get(kv[0], 99))
    )
    return {
        "schema": PROVENANCE_SCHEMA_VERSION,
        "pairs": len(chains),
        "records": len(records),
        "outcomes": outcomes,
        "stages": ordered_stages,
        "distributions": distributions,
        "near_misses": near_misses,
    }


def render_audit(audit: Mapping[str, Any]) -> str:
    """Render :func:`audit_report` output for a terminal."""
    lines = [
        f"provenance audit: {audit['pairs']} pairs, "
        f"{audit['records']} records",
        "outcomes: "
        + "  ".join(f"{k} {v}" for k, v in sorted(audit["outcomes"].items())),
        "",
        "per-stage decisions:",
    ]
    for stage, row in audit["stages"].items():
        step = STAGE_STEPS.get(stage, "?")
        lines.append(
            f"  step {step:>2}  {stage:<16} kept {row['kept']:>6}  "
            f"dropped {row['dropped']:>6}"
        )
        for reason, count in sorted(
            row["reasons"].items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"           - {reason}: {count}")
    if audit["distributions"]:
        lines.append("")
        lines.append("distributions:")
        for name, stats in audit["distributions"].items():
            lines.append(
                f"  {name:<28} n={stats['count']:<6} "
                f"mean={stats['mean']:.6g} p50={stats['p50']:.6g} "
                f"p95={stats['p95']:.6g}"
            )
    lines.append("")
    lines.append(f"near misses: {len(audit['near_misses'])}")
    for miss in audit["near_misses"][:20]:
        lines.append(
            f"  ({miss['source']}, {miss['destination']}) at "
            f"{miss['stage']}  {_format_values(miss['values'])}".rstrip()
        )
    if len(audit["near_misses"]) > 20:
        lines.append(f"  ... and {len(audit['near_misses']) - 20} more")
    return "\n".join(lines)


def diff_runs(
    a_records: List[VerdictRecord], b_records: List[VerdictRecord]
) -> Dict[str, Any]:
    """Verdict-level drift between two provenance stores."""

    def outcome_map(records):
        return {
            pair: chain_outcome(chain)
            for pair, chain in group_chains(records).items()
        }

    a_outcomes = outcome_map(a_records)
    b_outcomes = outcome_map(b_records)
    changed = []
    for pair in sorted(set(a_outcomes) & set(b_outcomes)):
        if a_outcomes[pair] != b_outcomes[pair]:
            (a_out, a_stage) = a_outcomes[pair]
            (b_out, b_stage) = b_outcomes[pair]
            changed.append(
                {
                    "source": pair[0],
                    "destination": pair[1],
                    "a": {"outcome": a_out, "stage": a_stage},
                    "b": {"outcome": b_out, "stage": b_stage},
                }
            )
    only_a = sorted(set(a_outcomes) - set(b_outcomes))
    only_b = sorted(set(b_outcomes) - set(a_outcomes))
    return {
        "pairs_a": len(a_outcomes),
        "pairs_b": len(b_outcomes),
        "changed": changed,
        "only_a": [{"source": s, "destination": d} for s, d in only_a],
        "only_b": [{"source": s, "destination": d} for s, d in only_b],
    }


def render_diff(diff: Mapping[str, Any]) -> str:
    """Render :func:`diff_runs` output for a terminal."""
    lines = [
        f"run A: {diff['pairs_a']} pairs   run B: {diff['pairs_b']} pairs",
        f"changed outcome: {len(diff['changed'])}",
    ]
    for entry in diff["changed"]:
        a, b = entry["a"], entry["b"]

        def _fmt(side):
            if side["outcome"] == "dropped":
                stage = side["stage"]
                return f"dropped at step {STAGE_STEPS.get(stage, '?')} ({stage})"
            return side["outcome"]

        lines.append(
            f"  ({entry['source']}, {entry['destination']}): "
            f"{_fmt(a)} -> {_fmt(b)}"
        )
    if diff["only_a"]:
        lines.append(f"only in A: {len(diff['only_a'])}")
        for entry in diff["only_a"][:10]:
            lines.append(f"  ({entry['source']}, {entry['destination']})")
    if diff["only_b"]:
        lines.append(f"only in B: {len(diff['only_b'])}")
        for entry in diff["only_b"][:10]:
            lines.append(f"  ({entry['source']}, {entry['destination']})")
    if not diff["changed"] and not diff["only_a"] and not diff["only_b"]:
        lines.append("no drift: identical verdicts for all shared pairs")
    return "\n".join(lines)
