"""Metrics registry: counters, gauges, histograms, timers.

The registry is the single sink every instrumented call site writes to.
It is deliberately dependency-free (stdlib only) so that ``repro.obs``
can be imported from any layer — including :mod:`repro.core`, which must
not grow third-party imports — without creating cycles.

Design points, mirroring what a 30B-event Hadoop deployment needs:

- **Per-run scoping.**  A module-level *current registry* (see
  :func:`get_registry` / :func:`set_registry` / :func:`scoped_registry`)
  lets a front end activate a fresh registry for one run without
  threading a handle through every constructor.
- **Zero overhead when off.**  The default current registry is a
  :class:`NullRegistry` whose instruments are shared no-op singletons;
  an instrumented hot path costs a dict-free attribute lookup and a
  ``pass`` method call.  Set ``REPRO_TELEMETRY=1`` (or install a real
  registry) to collect.
- **Thread/process-safe aggregation.**  All mutation happens under a
  lock, and :meth:`MetricsRegistry.snapshot` produces a plain picklable
  dict that :meth:`MetricsRegistry.merge` folds back in — this is how
  MapReduce worker processes ship their child registries back to the
  parent (see :mod:`repro.mapreduce.engine`).
- **Bounded memory.**  Histograms keep exact count/sum/min/max plus a
  capped sample of observations for quantile estimation, so a
  million-pair run cannot grow the registry without bound.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "telemetry_enabled",
]

#: Histograms keep at most this many raw observations for quantiles.
HISTOGRAM_SAMPLE_LIMIT = 4096


class Counter:
    """A monotonically increasing count (events seen, cache hits, ...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (population size, worker count, ...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """A distribution of observations with exact moments and sampled
    quantiles (p50/p95/p99 by default).

    ``count``/``total``/``min``/``max`` are exact regardless of volume;
    quantiles are computed over the first ``HISTOGRAM_SAMPLE_LIMIT``
    observations (ample for per-stage latencies, and bounded for
    per-pair metrics).
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: List[float] = []
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self.samples) < HISTOGRAM_SAMPLE_LIMIT:
                self.samples.append(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of the sampled observations.

        Uses linear interpolation between order statistics; returns 0.0
        for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            data = sorted(self.samples)
        if not data:
            return 0.0
        position = q * (len(data) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return data[low]
        weight = position - low
        return data[low] * (1.0 - weight) + data[high] * weight

    def percentiles(self) -> Dict[str, float]:
        """The standard p50/p95/p99 summary."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Timer:
    """Context manager observing elapsed wall-clock seconds into a
    histogram.  Re-entrant across separate ``with`` statements (each
    enter creates an independent measurement)."""

    __slots__ = ("_histogram", "_starts")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._starts: List[float] = []

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *_exc: Any) -> None:
        start = self._starts.pop()
        self._histogram.observe(time.perf_counter() - start)


class MetricsRegistry:
    """A per-run collection of named metrics.

    Instruments are created on first use and always return the same
    object for the same name, so call sites never need to pre-register.
    All operations are thread-safe; see :meth:`snapshot`/:meth:`merge`
    for the cross-process story.
    """

    #: Real registries collect; the NullRegistry overrides this.
    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(
                    name, Counter(name, self._lock)
                )
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name, self._lock))
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, self._lock)
                )
        return histogram

    def timer(self, name: str) -> Timer:
        """A context manager timing into histogram ``name`` (seconds)."""
        return Timer(self.histogram(name))

    # -- introspection -----------------------------------------------------

    def counters(self) -> Iterator[Tuple[str, int]]:
        """All (name, value) counter pairs, sorted by name."""
        with self._lock:
            items = [(c.name, c.value) for c in self._counters.values()]
        return iter(sorted(items))

    def gauges(self) -> Iterator[Tuple[str, float]]:
        """All (name, value) gauge pairs, sorted by name."""
        with self._lock:
            items = [(g.name, g.value) for g in self._gauges.values()]
        return iter(sorted(items))

    def histograms(self) -> Iterator[Histogram]:
        """All histograms, sorted by name."""
        with self._lock:
            items = sorted(self._histograms.values(), key=lambda h: h.name)
        return iter(items)

    def is_empty(self) -> bool:
        """True when nothing has been recorded yet."""
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain picklable dict of everything recorded so far.

        This is the wire format MapReduce workers return to the parent;
        :meth:`merge` is its inverse.
        """
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {name: g.value for name, g in self._gauges.items()},
                "histograms": {
                    name: {
                        "count": h.count,
                        "total": h.total,
                        "min": h.min,
                        "max": h.max,
                        "samples": list(h.samples),
                    }
                    for name, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a child registry's :meth:`snapshot` into this registry.

        Counters and histogram moments add; gauges take the child's
        value (last write wins); histogram samples extend up to the
        sample cap.  Safe to call from multiple threads.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            with self._lock:
                histogram.count += payload["count"]
                histogram.total += payload["total"]
                histogram.min = min(histogram.min, payload["min"])
                histogram.max = max(histogram.max, payload["max"])
                room = HISTOGRAM_SAMPLE_LIMIT - len(histogram.samples)
                if room > 0:
                    histogram.samples.extend(payload["samples"][:room])

    def merge_registry(self, other: "MetricsRegistry") -> None:
        """Convenience: merge another in-process registry."""
        self.merge(other.snapshot())


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram/timer."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *_exc: Any) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The off switch: every instrument is a shared no-op singleton.

    Instrumented code can call ``get_registry().counter(...).inc()``
    unconditionally; with the null registry active this records nothing
    and allocates nothing.
    """

    enabled = False

    def __init__(self) -> None:  # no lock, no dicts
        pass

    def counter(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def timer(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def counters(self) -> Iterator[Tuple[str, int]]:
        return iter(())

    def gauges(self) -> Iterator[Tuple[str, float]]:
        return iter(())

    def histograms(self) -> Iterator[Histogram]:
        return iter(())

    def is_empty(self) -> bool:
        return True

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        pass

    def merge_registry(self, other: MetricsRegistry) -> None:
        pass


#: The process-wide no-op registry (safe to share: it holds no state).
NULL_REGISTRY = NullRegistry()

_current: MetricsRegistry = (
    MetricsRegistry()
    if os.environ.get("REPRO_TELEMETRY", "").strip() not in ("", "0", "false")
    else NULL_REGISTRY
)


def get_registry() -> MetricsRegistry:
    """The currently active registry (a no-op one when telemetry is off)."""
    return _current


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as current; ``None`` turns telemetry off.

    Returns the previously active registry so callers can restore it.
    """
    global _current
    previous = _current
    _current = registry if registry is not None else NULL_REGISTRY
    return previous


class scoped_registry:
    """Context manager activating ``registry`` for the enclosed block.

    >>> registry = MetricsRegistry()
    >>> with scoped_registry(registry):
    ...     pass  # instrumented code records into ``registry``
    """

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self._registry)
        return get_registry()

    def __exit__(self, *_exc: Any) -> None:
        set_registry(self._previous)


def telemetry_enabled() -> bool:
    """True when the current registry actually collects metrics."""
    return _current.enabled
