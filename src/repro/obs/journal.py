"""Durable, append-only run event journal (``events.jsonl``).

A multi-hour sharded run needs a progress signal that survives the
process: the journal is a schema-versioned JSONL file in the run's
checkpoint/telemetry directory recording the operational story — shard
start/finish, retries, quarantines, pool restarts, threshold-cache
persist/load, worker heartbeats — one event per line:

``{"v": 1, "ts": 1754480000.0, "event": "shard_finish", "run_id":
"1f2ab3c4d5e6", "pid": 4242, "shard": 7, "pairs": 256, ...}``

Durability and concurrency discipline:

- every append is **one** ``os.write`` to an ``O_APPEND`` file
  descriptor, so concurrent writers — worker processes heartbeating
  into the same file — never interleave bytes within a line;
- the journal is append-only: a resumed run appends to the same file
  (with a ``resumed`` marker event) instead of truncating it, so the
  full history of interrupt/resume cycles reads as one stream;
- :func:`read_events` tolerates a torn trailing line (a writer killed
  mid-append) by skipping undecodable lines instead of raising.

:class:`EventJournal` is picklable (the fd is reopened lazily per
process), which is how the MapReduce engine ships it into worker
processes for heartbeats.  The module-level *current journal*
(:func:`get_journal` / :func:`scoped_journal` / :func:`journal_emit`)
lets deep layers — the engine's retry loop, the stage graph — emit
events without threading a handle through every constructor, mirroring
the registry pattern of :mod:`repro.obs.registry`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "JOURNAL_FILE",
    "JOURNAL_SCHEMA_VERSION",
    "JournalSchemaError",
    "EventJournal",
    "read_events",
    "tail_events",
    "get_journal",
    "set_journal",
    "scoped_journal",
    "journal_emit",
]

#: Default journal file name inside a checkpoint/telemetry directory.
JOURNAL_FILE = "events.jsonl"

#: Version stamped into every event as ``"v"``.
JOURNAL_SCHEMA_VERSION = 1


class JournalSchemaError(ValueError):
    """A journal written by a newer schema than this reader understands.

    A ``ValueError`` subclass so existing readers that already guard
    with ``except ValueError`` (``repro watch``, the status service)
    degrade to a clear one-line message instead of a traceback.
    """


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for event field values."""
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class EventJournal:
    """Append-only JSONL event log shared by every process of one run."""

    def __init__(
        self, path: Union[str, Path], *, run_id: Optional[str] = None
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self._fd: Optional[int] = None
        self._lock = threading.Lock()

    @classmethod
    def in_dir(
        cls, directory: Union[str, Path], *, run_id: Optional[str] = None
    ) -> "EventJournal":
        """The journal at ``<directory>/events.jsonl`` (dir created)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / JOURNAL_FILE, run_id=run_id)

    # -- pickling (workers append to the same file by path) ----------------

    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path, "run_id": self.run_id}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.run_id = state.get("run_id")
        self._fd = None
        self._lock = threading.Lock()

    # -- writing -----------------------------------------------------------

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the record as written.

        The record is serialized to a single line and written with one
        ``os.write`` call on an ``O_APPEND`` descriptor — concurrent
        appenders (worker processes) cannot tear each other's lines.
        """
        record: Dict[str, Any] = {
            "v": JOURNAL_SCHEMA_VERSION,
            "ts": time.time(),
            "event": event,
            "pid": os.getpid(),
        }
        if self.run_id is not None:
            record["run_id"] = self.run_id
        for key, value in fields.items():
            if value is not None:
                record[key] = _jsonable(value)
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            os.write(self._ensure_fd(), data)
        return record

    def close(self) -> None:
        """Close the file descriptor (reopened lazily on next append)."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """All decodable events in the journal (empty when absent)."""
        return read_events(self.path)

    def tail(self, n: int = 50) -> List[Dict[str, Any]]:
        """The last ``n`` decodable events."""
        return tail_events(self.path, n)


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read every decodable event from a journal file.

    A line that does not parse as a JSON object — typically a torn
    trailing line left by a killed writer — is skipped, never fatal: the
    journal must stay readable mid-run and after any crash.  A line that
    *does* parse but carries a schema version newer than
    :data:`JOURNAL_SCHEMA_VERSION` raises :class:`JournalSchemaError`
    instead of being misread: forward compatibility fails loudly with
    one clear line, not with silently wrong status.
    """
    path = Path(path)
    if not path.exists():
        return []
    events: List[Dict[str, Any]] = []
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            version = record.get("v")
            if isinstance(version, int) and version > JOURNAL_SCHEMA_VERSION:
                raise JournalSchemaError(
                    f"journal {path} uses schema v{version}; this reader "
                    f"understands up to v{JOURNAL_SCHEMA_VERSION} — "
                    f"upgrade repro to read it"
                )
            events.append(record)
    return events


def tail_events(path: Union[str, Path], n: int = 50) -> List[Dict[str, Any]]:
    """The last ``n`` decodable events of a journal file."""
    if n <= 0:
        return []
    return read_events(path)[-n:]


# -- current journal --------------------------------------------------------

_current: Optional[EventJournal] = None


def get_journal() -> Optional[EventJournal]:
    """The currently active journal, or None when no run is journaling."""
    return _current


def set_journal(journal: Optional[EventJournal]) -> Optional[EventJournal]:
    """Install ``journal`` as current; returns the previous one."""
    global _current
    previous = _current
    _current = journal
    return previous


class scoped_journal:
    """Context manager activating a journal for the enclosed block.

    >>> with scoped_journal(EventJournal.in_dir("/tmp/run")):
    ...     journal_emit("run_start", n_shards=4)
    """

    def __init__(self, journal: Optional[EventJournal]) -> None:
        self._journal = journal
        self._previous: Optional[EventJournal] = None

    def __enter__(self) -> Optional[EventJournal]:
        self._previous = set_journal(self._journal)
        return self._journal

    def __exit__(self, *_exc: Any) -> None:
        set_journal(self._previous)


def journal_emit(event: str, **fields: Any) -> None:
    """Append to the current journal; a no-op when none is active."""
    journal = get_journal()
    if journal is not None:
        journal.append(event, **fields)
