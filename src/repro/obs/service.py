"""Live run status: journal folding and the stdlib HTTP status service.

The paper's detection infrastructure runs as a long-lived service that
operators watch (Section VII); this module gives sharded runs the same
property with nothing beyond the stdlib:

- :func:`build_status` folds the event journal (see
  :mod:`repro.obs.journal`) into one JSON-able status dict — shards
  done/total, per-shard state, pairs/sec throughput, ETA, last
  heartbeat per worker, retry/quarantine counts;
- :class:`StatusServer` serves that status over HTTP from a background
  thread (``http.server.ThreadingHTTPServer``), alongside the live
  Prometheus exposition and the journal tail:

  ========== =======================================================
  ``/status``  status JSON (``build_status`` over the journal)
  ``/metrics`` Prometheus text of the live registry (``to_prometheus``)
  ``/events``  journal tail as NDJSON (``?n=<count>``, default 50)
  ``/``        tiny text index of the endpoints
  ========== =======================================================

``repro run --status-port N`` starts one next to a sharded run and
``repro watch`` polls it (or folds the journal directly); see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Union
from urllib.parse import parse_qs, urlparse

from repro.obs.export import to_prometheus
from repro.obs.journal import read_events, tail_events
from repro.obs.registry import MetricsRegistry

__all__ = [
    "STATUS_SCHEMA_VERSION",
    "build_status",
    "render_status",
    "StatusServer",
]

#: Version stamped into every ``/status`` payload as ``"schema"``.
STATUS_SCHEMA_VERSION = 1


def build_status(
    events: List[Dict[str, Any]], *, now: Optional[float] = None
) -> Dict[str, Any]:
    """Fold journal events into one run-status dict.

    The journal is append-only across interrupt/resume cycles, so the
    fold deduplicates by shard index: a shard is *done* once any
    ``shard_finish`` or ``shard_resumed`` event names it, regardless of
    how many runs the journal spans.  Throughput and ETA come from the
    ``shard_finish`` events' pair counts and durations; worker liveness
    from the newest ``heartbeat`` per worker pid.
    """
    # An empty (or not-yet-created) journal folds to state "waiting":
    # a watcher pointed at a run that has not started yet should see
    # "waiting for run", not an error or a bogus terminal state.
    status: Dict[str, Any] = {
        "schema": STATUS_SCHEMA_VERSION,
        "run_id": None,
        "state": "waiting",
        "resumed": False,
        "shards": {"total": 0, "done": 0, "running": 0, "states": {}},
        "pairs": {"processed": 0, "detected": 0},
        "throughput": {"pairs_per_second": None, "eta_seconds": None},
        "workers": {},
        "quarantined": 0,
        "retries": 0,
        "pool_restarts": 0,
        "events": len(events),
        "last_event_ts": None,
    }
    states: Dict[str, str] = status["shards"]["states"]
    done: set = set()
    finish_pairs = 0
    finish_seconds = 0.0
    finish_count = 0
    for record in events:
        kind = record.get("event")
        ts = record.get("ts")
        if ts is not None:
            status["last_event_ts"] = ts
        if record.get("run_id") is not None:
            status["run_id"] = record["run_id"]
        if kind == "run_start":
            status["state"] = "running"
            if record.get("n_shards") is not None:
                status["shards"]["total"] = int(record["n_shards"])
        elif kind == "resumed":
            status["resumed"] = True
        elif kind == "shard_start":
            shard = str(record.get("shard"))
            if shard not in done:
                states[shard] = "running"
        elif kind in ("shard_finish", "shard_resumed"):
            shard = str(record.get("shard"))
            done.add(shard)
            states[shard] = (
                "resumed" if kind == "shard_resumed" else "done"
            )
            if kind == "shard_finish":
                pairs = int(record.get("pairs", 0))
                status["pairs"]["processed"] += pairs
                status["pairs"]["detected"] += int(record.get("detected", 0))
                seconds = record.get("seconds")
                if seconds is not None:
                    finish_pairs += pairs
                    finish_seconds += float(seconds)
                    finish_count += 1
        elif kind == "heartbeat":
            worker = str(record.get("worker", record.get("pid")))
            if ts is not None:
                status["workers"][worker] = ts
        elif kind == "retry":
            status["retries"] += 1
        elif kind == "pool_restart":
            status["pool_restarts"] += 1
        elif kind == "quarantine":
            status["quarantined"] += 1
        elif kind == "run_finish":
            status["state"] = "finished"
        elif kind == "run_suspended":
            status["state"] = "suspended"
    status["shards"]["done"] = len(done)
    status["shards"]["running"] = sum(
        1 for state in states.values() if state == "running"
    )
    if finish_seconds > 0:
        rate = finish_pairs / finish_seconds
        status["throughput"]["pairs_per_second"] = round(rate, 3)
        remaining = status["shards"]["total"] - len(done)
        if remaining > 0 and finish_count:
            mean_shard = finish_seconds / finish_count
            status["throughput"]["eta_seconds"] = round(
                mean_shard * remaining, 3
            )
        elif remaining <= 0:
            status["throughput"]["eta_seconds"] = 0.0
    return status


def render_status(status: Dict[str, Any]) -> str:
    """Human one-glance rendering of a :func:`build_status` dict."""
    shards = status["shards"]
    throughput = status["throughput"]
    if status.get("state") == "waiting" and not status.get("events"):
        return "waiting for run (no journal events yet)\n"
    lines = [
        f"run {status['run_id'] or '?'}  [{status['state']}]"
        + ("  (resumed)" if status.get("resumed") else ""),
        f"shards   {shards['done']}/{shards['total']} done"
        f" ({shards['running']} running)",
        f"pairs    {status['pairs']['processed']} processed, "
        f"{status['pairs']['detected']} detected",
    ]
    if throughput["pairs_per_second"] is not None:
        eta = throughput["eta_seconds"]
        lines.append(
            f"rate     {throughput['pairs_per_second']:.1f} pairs/s"
            + (f", eta {eta:.0f}s" if eta is not None else "")
        )
    if status["workers"]:
        lines.append(f"workers  {len(status['workers'])} heartbeating")
    problems = [
        f"{name} {status[name]}"
        for name in ("retries", "pool_restarts", "quarantined")
        if status[name]
    ]
    if problems:
        lines.append("issues   " + ", ".join(problems))
    return "\n".join(lines) + "\n"


class _StatusHandler(BaseHTTPRequestHandler):
    """Routes one request; the server instance carries the data sources."""

    server: "_StatusHTTPServer"

    # BaseHTTPRequestHandler logs every request to stderr by default.
    def log_message(self, *_args: Any) -> None:  # noqa: D102
        pass

    def _send(
        self, payload: str, content_type: str, code: int = 200
    ) -> None:
        body = payload.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/status":
                status = build_status(self.server.read_journal())
                self._send(
                    json.dumps(status, sort_keys=True) + "\n",
                    "application/json",
                )
            elif route == "/metrics":
                self._send(
                    to_prometheus(self.server.registry),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/events":
                query = parse_qs(parsed.query)
                try:
                    n = int(query.get("n", ["50"])[0])
                except ValueError:
                    n = 50
                lines = [
                    json.dumps(event, sort_keys=True)
                    for event in self.server.tail_journal(n)
                ]
                self._send(
                    "\n".join(lines) + ("\n" if lines else ""),
                    "application/x-ndjson",
                )
            elif route == "/":
                self._send(
                    "repro status service\n"
                    "  /status   run status JSON\n"
                    "  /metrics  Prometheus text exposition\n"
                    "  /events   journal tail (?n=50)\n",
                    "text/plain; charset=utf-8",
                )
            else:
                self._send("not found\n", "text/plain; charset=utf-8", 404)
        except Exception as exc:  # never kill the serving thread
            self._send(f"error: {exc}\n", "text/plain; charset=utf-8", 500)


class _StatusHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, registry, journal_path) -> None:
        super().__init__(address, _StatusHandler)
        self.registry = registry
        self.journal_path = journal_path

    def read_journal(self) -> List[Dict[str, Any]]:
        if self.journal_path is None:
            return []
        return read_events(self.journal_path)

    def tail_journal(self, n: int) -> List[Dict[str, Any]]:
        if self.journal_path is None:
            return []
        return tail_events(self.journal_path, n)


class StatusServer:
    """Background HTTP server exposing a run's live status.

    >>> server = StatusServer(journal_path=ckpt / "events.jsonl",
    ...                       registry=registry, port=0)
    >>> port = server.start()   # port 0 binds an ephemeral port
    >>> ...                     # run; curl /status, /metrics, /events
    >>> server.stop()

    The server thread is a daemon and every read re-folds the journal
    from disk, so it observes exactly what crashed-run forensics would.
    """

    def __init__(
        self,
        *,
        journal_path: Optional[Union[str, Path]] = None,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.journal_path = (
            Path(journal_path) if journal_path is not None else None
        )
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._server: Optional[_StatusHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        if self._server is not None:
            return self.port
        self._server = _StatusHTTPServer(
            (self.host, self.port), self.registry, self.journal_path
        )
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-status-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "StatusServer":
        self.start()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
