"""Lightweight span tracing for the 8-step funnel.

A *span* measures one named unit of work — a filter stage, a MapReduce
phase, a detector step — as a context manager:

>>> from repro.obs import span
>>> with span("pipeline.run"):
...     with span("step1_global_whitelist"):
...         pass

Spans nest: the inner span above is recorded under the dotted path
``pipeline.run.step1_global_whitelist``, so the run report's latency
table shows both the whole and its parts.  Nesting is tracked per
thread; worker processes start their own stacks and their measurements
flow back through registry snapshots (see :mod:`repro.obs.registry`).

Each completed span observes its wall-clock duration into the current
registry's histogram ``span.<path>.seconds``.  With ``trace_memory=True``
(or ``REPRO_TELEMETRY_MEMORY=1``) the span also records the
:mod:`tracemalloc` peak during the block into ``span.<path>.peak_kb`` —
useful for sizing rescale/merge windows, but markedly slower, so it is
opt-in per span.

A span can also carry a *profiler*: ``span(..., profile="cprofile")``
(or ``"tracemalloc"``) attaches a hotspot collector for the duration of
the block, and the resulting top-N table is recorded into the
module-level profile store (see :mod:`repro.obs.profiling`) under the
span's dotted path.  Setting ``REPRO_PROFILE=cprofile|tracemalloc``
blanket-enables profiling on every span — cProfile cannot nest, so in
that mode only the outermost span of each thread collects.

When telemetry is off (the NullRegistry is current) a span costs two
function calls and records nothing.
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc
from typing import Any, List, Optional, Union

from repro.obs import profiling
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["Span", "span", "current_span_path"]

_stack = threading.local()


def _path_stack() -> List[str]:
    stack = getattr(_stack, "names", None)
    if stack is None:
        stack = _stack.names = []
    return stack


def current_span_path() -> str:
    """The dotted path of the innermost open span ('' outside any)."""
    return ".".join(_path_stack())


def _memory_default() -> bool:
    return os.environ.get("REPRO_TELEMETRY_MEMORY", "").strip() not in (
        "", "0", "false",
    )


class Span:
    """One traced block; see module docstring.  Not reusable."""

    __slots__ = ("name", "path", "seconds", "peak_kb", "_registry",
                 "_memory", "_start", "_started_tracemalloc",
                 "_profile", "_collector")

    def __init__(
        self,
        name: str,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace_memory: Optional[bool] = None,
        profile: Optional[Union[bool, str]] = None,
    ) -> None:
        self.name = name
        self.path = ""
        self.seconds = 0.0
        self.peak_kb: Optional[float] = None
        self._registry = registry
        self._memory = trace_memory
        self._start = 0.0
        self._started_tracemalloc = False
        self._profile = profile
        self._collector = None

    def _profile_kind(self) -> Optional[str]:
        """Resolve the profiling kind: explicit argument beats the env.

        ``True`` means "the env kind, else cProfile"; ``False`` opts a
        span out even under blanket ``REPRO_PROFILE``.
        """
        if self._profile is False:
            return None
        if self._profile is True:
            return profiling.profile_mode() or "cprofile"
        if isinstance(self._profile, str):
            return self._profile
        return profiling.profile_mode()

    def __enter__(self) -> "Span":
        registry = self._registry if self._registry is not None else get_registry()
        self._registry = registry
        if not registry.enabled:
            return self
        stack = _path_stack()
        stack.append(self.name)
        self.path = ".".join(stack)
        memory = self._memory if self._memory is not None else _memory_default()
        if memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
            self._memory = True
        kind = self._profile_kind()
        if kind is not None:
            self._collector = profiling.start_collector(kind)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> None:
        registry = self._registry
        if registry is None or not registry.enabled:
            return
        self.seconds = time.perf_counter() - self._start
        if self._collector is not None:
            hotspots = self._collector.stop()
            profiling.record_profile(
                profiling.SpanProfile(
                    path=self.path,
                    kind=self._collector.kind,
                    seconds=self.seconds,
                    hotspots=hotspots,
                )
            )
            self._collector = None
        if self._memory:
            _current, peak = tracemalloc.get_traced_memory()
            self.peak_kb = peak / 1024.0
            if self._started_tracemalloc:
                tracemalloc.stop()
            registry.histogram(f"span.{self.path}.peak_kb").observe(self.peak_kb)
        registry.histogram(f"span.{self.path}.seconds").observe(self.seconds)
        stack = _path_stack()
        if stack and stack[-1] == self.name:
            stack.pop()


def span(
    name: str,
    *,
    registry: Optional[MetricsRegistry] = None,
    trace_memory: Optional[bool] = None,
    profile: Optional[Union[bool, str]] = None,
) -> Span:
    """Open a span named ``name`` on the current (or given) registry."""
    return Span(
        name, registry=registry, trace_memory=trace_memory, profile=profile
    )
