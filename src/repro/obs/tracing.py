"""Lightweight span tracing for the 8-step funnel.

A *span* measures one named unit of work — a filter stage, a MapReduce
phase, a detector step — as a context manager:

>>> from repro.obs import span
>>> with span("pipeline.run"):
...     with span("step1_global_whitelist"):
...         pass

Spans nest: the inner span above is recorded under the dotted path
``pipeline.run.step1_global_whitelist``, so the run report's latency
table shows both the whole and its parts.  Nesting is tracked per
thread; worker processes start their own stacks and their measurements
flow back through registry snapshots (see :mod:`repro.obs.registry`).

Each completed span observes its wall-clock duration into the current
registry's histogram ``span.<path>.seconds``.  With ``trace_memory=True``
(or ``REPRO_TELEMETRY_MEMORY=1``) the span also records the
:mod:`tracemalloc` peak during the block into ``span.<path>.peak_kb`` —
useful for sizing rescale/merge windows, but markedly slower, so it is
opt-in per span.

When telemetry is off (the NullRegistry is current) a span costs two
function calls and records nothing.
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc
from typing import Any, List, Optional

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["Span", "span", "current_span_path"]

_stack = threading.local()


def _path_stack() -> List[str]:
    stack = getattr(_stack, "names", None)
    if stack is None:
        stack = _stack.names = []
    return stack


def current_span_path() -> str:
    """The dotted path of the innermost open span ('' outside any)."""
    return ".".join(_path_stack())


def _memory_default() -> bool:
    return os.environ.get("REPRO_TELEMETRY_MEMORY", "").strip() not in (
        "", "0", "false",
    )


class Span:
    """One traced block; see module docstring.  Not reusable."""

    __slots__ = ("name", "path", "seconds", "peak_kb", "_registry",
                 "_memory", "_start", "_started_tracemalloc")

    def __init__(
        self,
        name: str,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace_memory: Optional[bool] = None,
    ) -> None:
        self.name = name
        self.path = ""
        self.seconds = 0.0
        self.peak_kb: Optional[float] = None
        self._registry = registry
        self._memory = trace_memory
        self._start = 0.0
        self._started_tracemalloc = False

    def __enter__(self) -> "Span":
        registry = self._registry if self._registry is not None else get_registry()
        self._registry = registry
        if not registry.enabled:
            return self
        stack = _path_stack()
        stack.append(self.name)
        self.path = ".".join(stack)
        memory = self._memory if self._memory is not None else _memory_default()
        if memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
            self._memory = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> None:
        registry = self._registry
        if registry is None or not registry.enabled:
            return
        self.seconds = time.perf_counter() - self._start
        if self._memory:
            _current, peak = tracemalloc.get_traced_memory()
            self.peak_kb = peak / 1024.0
            if self._started_tracemalloc:
                tracemalloc.stop()
            registry.histogram(f"span.{self.path}.peak_kb").observe(self.peak_kb)
        registry.histogram(f"span.{self.path}.seconds").observe(self.seconds)
        stack = _path_stack()
        if stack and stack[-1] == self.name:
            stack.pop()


def span(
    name: str,
    *,
    registry: Optional[MetricsRegistry] = None,
    trace_memory: Optional[bool] = None,
) -> Span:
    """Open a span named ``name`` on the current (or given) registry."""
    return Span(name, registry=registry, trace_memory=trace_memory)
