"""Lightweight span tracing for the 8-step funnel.

A *span* measures one named unit of work — a filter stage, a MapReduce
phase, a detector step — as a context manager:

>>> from repro.obs import span
>>> with span("pipeline.run"):
...     with span("step1_global_whitelist"):
...         pass

Spans nest: the inner span above is recorded under the dotted path
``pipeline.run.step1_global_whitelist``, so the run report's latency
table shows both the whole and its parts.  Nesting is tracked per
thread; worker processes start their own stacks and their measurements
flow back through registry snapshots (see :mod:`repro.obs.registry`).

Each completed span observes its wall-clock duration into the current
registry's histogram ``span.<path>.seconds``.  With ``trace_memory=True``
(or ``REPRO_TELEMETRY_MEMORY=1``) the span also records the
:mod:`tracemalloc` peak during the block into ``span.<path>.peak_kb`` —
useful for sizing rescale/merge windows, but markedly slower, so it is
opt-in per span.

A span can also carry a *profiler*: ``span(..., profile="cprofile")``
(or ``"tracemalloc"``) attaches a hotspot collector for the duration of
the block, and the resulting top-N table is recorded into the
module-level profile store (see :mod:`repro.obs.profiling`) under the
span's dotted path.  Setting ``REPRO_PROFILE=cprofile|tracemalloc``
blanket-enables profiling on every span — cProfile cannot nest, so in
that mode only the outermost span of each thread collects.

Distributed tracing: when a :class:`TraceContext` is active (see
:func:`start_trace` / :func:`scoped_trace`) every completed span is also
captured as a :class:`SpanRecord` — span id, parent id, wall-clock start
and duration, pid — into a bounded module-level buffer.  The MapReduce
engine ships each worker task's records back with its registry snapshot
and folds them in via :func:`record_spans`, so worker-side spans carry
parent links into the engine's span tree; :func:`build_trace_tree`
stitches the merged records into one tree per trace (orphans — children
of spans lost with a crashed worker — surface as extra roots instead of
disappearing).  ``repro trace`` renders the tree and exports Chrome
trace-event JSON (see :mod:`repro.obs.export`).

When telemetry is off (the NullRegistry is current) a span costs two
function calls and records nothing.
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs import profiling
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "Span",
    "span",
    "current_span_path",
    "TraceContext",
    "SpanRecord",
    "TRACE_SPAN_LIMIT",
    "new_run_id",
    "new_trace_id",
    "new_span_id",
    "current_trace",
    "set_trace",
    "scoped_trace",
    "start_trace",
    "current_span_id",
    "task_trace_payload",
    "record_spans",
    "pending_spans",
    "drain_spans",
    "clear_spans",
    "build_trace_tree",
    "TraceNode",
]

_stack = threading.local()


def _path_stack() -> List[str]:
    stack = getattr(_stack, "names", None)
    if stack is None:
        stack = _stack.names = []
    return stack


def _id_stack() -> List[Optional[str]]:
    """Span ids parallel to :func:`_path_stack` (None when untraced)."""
    stack = getattr(_stack, "ids", None)
    if stack is None:
        stack = _stack.ids = []
    return stack


def current_span_path() -> str:
    """The dotted path of the innermost open span ('' outside any)."""
    return ".".join(_path_stack())


# -- trace context ----------------------------------------------------------


def new_run_id() -> str:
    """A short operator-facing run identifier (12 hex chars)."""
    return uuid.uuid4().hex[:12]


def new_trace_id() -> str:
    """A globally unique trace identifier."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A span identifier unique within its trace (16 hex chars)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """Identity one process/task traces under.

    ``parent_span_id`` links records started here under a span that is
    open in *another* process — this is the cross-worker propagation
    seam: the engine embeds ``(trace_id, parent_span_id)`` in each task
    payload and the worker installs it before running the task.
    """

    trace_id: str
    parent_span_id: Optional[str] = None
    run_id: Optional[str] = None

    def to_payload(self) -> Dict[str, Optional[str]]:
        """Picklable dict form for embedding in task payloads."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "run_id": self.run_id,
        }


_trace_local = threading.local()


def current_trace() -> Optional[TraceContext]:
    """The active trace context of this thread (None when untraced)."""
    return getattr(_trace_local, "context", None)


def set_trace(context: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install ``context`` as current; returns the previous one."""
    previous = current_trace()
    _trace_local.context = context
    return previous


class scoped_trace:
    """Context manager activating a trace context for a block.

    >>> with scoped_trace(TraceContext(trace_id=new_trace_id())):
    ...     pass  # spans in here are captured as SpanRecords
    """

    def __init__(self, context: Optional[TraceContext]) -> None:
        self._context = context
        self._previous: Optional[TraceContext] = None

    def __enter__(self) -> Optional[TraceContext]:
        self._previous = set_trace(self._context)
        return self._context

    def __exit__(self, *_exc: Any) -> None:
        set_trace(self._previous)


def start_trace(
    run_id: Optional[str] = None, *, trace_id: Optional[str] = None
) -> TraceContext:
    """Install (and return) a fresh root trace context for this thread."""
    context = TraceContext(
        trace_id=trace_id if trace_id is not None else new_trace_id(),
        run_id=run_id,
    )
    set_trace(context)
    return context


def current_span_id() -> Optional[str]:
    """The innermost open span's id (falls back to the context's parent)."""
    for span_id in reversed(_id_stack()):
        if span_id is not None:
            return span_id
    context = current_trace()
    return context.parent_span_id if context is not None else None


def task_trace_payload() -> Optional[Dict[str, Optional[str]]]:
    """The trace payload a dispatched task should run under.

    Returns ``None`` when no trace is active; otherwise a picklable dict
    whose ``parent_span_id`` is the *currently open* span, so spans the
    task opens in its worker process come back parented here.
    """
    context = current_trace()
    if context is None:
        return None
    return TraceContext(
        trace_id=context.trace_id,
        parent_span_id=current_span_id(),
        run_id=context.run_id,
    ).to_payload()


# -- span records -----------------------------------------------------------

#: The buffer keeps at most this many span records per process.
TRACE_SPAN_LIMIT = 20000

_records_lock = threading.Lock()
_records: List["SpanRecord"] = []


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, as captured under an active trace context."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    path: str
    start: float  # wall clock (epoch seconds)
    seconds: float
    pid: int
    run_id: Optional[str] = None
    error: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "seconds": self.seconds,
            "pid": self.pid,
            "run_id": self.run_id,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            name=str(payload.get("name", "")),
            path=str(payload.get("path", "")),
            start=float(payload.get("start", 0.0)),
            seconds=float(payload.get("seconds", 0.0)),
            pid=int(payload.get("pid", 0)),
            run_id=payload.get("run_id"),
            error=bool(payload.get("error", False)),
        )


def _capture(record: SpanRecord) -> None:
    with _records_lock:
        if len(_records) < TRACE_SPAN_LIMIT:
            _records.append(record)


def record_spans(records: Iterable[Union[SpanRecord, Dict[str, Any]]]) -> None:
    """Fold records shipped from another process into this buffer.

    This is the merge half of cross-worker propagation: the engine calls
    it with the records each worker task drained before returning.
    """
    for record in records:
        if isinstance(record, dict):
            record = SpanRecord.from_dict(record)
        _capture(record)


def pending_spans() -> List[SpanRecord]:
    """The records captured so far (without clearing them)."""
    with _records_lock:
        return list(_records)


def drain_spans() -> List[SpanRecord]:
    """Return all captured records and clear the buffer."""
    with _records_lock:
        drained = list(_records)
        _records.clear()
    return drained


def clear_spans() -> None:
    """Discard all captured records."""
    with _records_lock:
        _records.clear()


# -- trace tree -------------------------------------------------------------


class TraceNode:
    """One span in a stitched trace tree (children sorted by start)."""

    __slots__ = ("record", "children", "orphaned")

    def __init__(self, record: SpanRecord, *, orphaned: bool = False) -> None:
        self.record = record
        self.children: List["TraceNode"] = []
        self.orphaned = orphaned


def build_trace_tree(
    records: Iterable[SpanRecord],
) -> List[TraceNode]:
    """Stitch merged span records into root trace nodes.

    Records whose parent is missing — the parent span was lost with a
    crashed worker, or the records were truncated — become additional
    roots flagged ``orphaned=True`` rather than being dropped, so a
    partial trace still renders.  Roots and children are ordered by
    wall-clock start.
    """
    nodes: Dict[str, TraceNode] = {}
    ordered: List[TraceNode] = []
    for record in records:
        node = TraceNode(record)
        # Duplicate span ids (a record shipped twice) keep the first.
        if record.span_id in nodes:
            continue
        nodes[record.span_id] = node
        ordered.append(node)
    roots: List[TraceNode] = []
    for node in ordered:
        parent_id = node.record.parent_id
        if parent_id is None:
            roots.append(node)
        elif parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            node.orphaned = True
            roots.append(node)
    for node in ordered:
        node.children.sort(key=lambda child: child.record.start)
    roots.sort(key=lambda root: root.record.start)
    return roots


def _memory_default() -> bool:
    return os.environ.get("REPRO_TELEMETRY_MEMORY", "").strip() not in (
        "", "0", "false",
    )


class Span:
    """One traced block; see module docstring.  Not reusable."""

    __slots__ = ("name", "path", "seconds", "peak_kb", "_registry",
                 "_memory", "_start", "_started_tracemalloc",
                 "_profile", "_collector", "span_id", "parent_id",
                 "_trace", "_wall_start")

    def __init__(
        self,
        name: str,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace_memory: Optional[bool] = None,
        profile: Optional[Union[bool, str]] = None,
    ) -> None:
        self.name = name
        self.path = ""
        self.seconds = 0.0
        self.peak_kb: Optional[float] = None
        self._registry = registry
        self._memory = trace_memory
        self._start = 0.0
        self._started_tracemalloc = False
        self._profile = profile
        self._collector = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._trace: Optional[TraceContext] = None
        self._wall_start = 0.0

    def _profile_kind(self) -> Optional[str]:
        """Resolve the profiling kind: explicit argument beats the env.

        ``True`` means "the env kind, else cProfile"; ``False`` opts a
        span out even under blanket ``REPRO_PROFILE``.
        """
        if self._profile is False:
            return None
        if self._profile is True:
            return profiling.profile_mode() or "cprofile"
        if isinstance(self._profile, str):
            return self._profile
        return profiling.profile_mode()

    def __enter__(self) -> "Span":
        registry = self._registry if self._registry is not None else get_registry()
        self._registry = registry
        if not registry.enabled:
            return self
        stack = _path_stack()
        ids = _id_stack()
        context = current_trace()
        if context is not None:
            self.span_id = new_span_id()
            parent = next(
                (sid for sid in reversed(ids) if sid is not None), None
            )
            self.parent_id = (
                parent if parent is not None else context.parent_span_id
            )
            self._trace = context
            self._wall_start = time.time()
        stack.append(self.name)
        ids.append(self.span_id)
        self.path = ".".join(stack)
        memory = self._memory if self._memory is not None else _memory_default()
        if memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
            self._memory = True
        kind = self._profile_kind()
        if kind is not None:
            self._collector = profiling.start_collector(kind)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> None:
        registry = self._registry
        if registry is None or not registry.enabled:
            return
        self.seconds = time.perf_counter() - self._start
        if self._collector is not None:
            hotspots = self._collector.stop()
            profiling.record_profile(
                profiling.SpanProfile(
                    path=self.path,
                    kind=self._collector.kind,
                    seconds=self.seconds,
                    hotspots=hotspots,
                )
            )
            self._collector = None
        if self._memory:
            _current, peak = tracemalloc.get_traced_memory()
            self.peak_kb = peak / 1024.0
            if self._started_tracemalloc:
                tracemalloc.stop()
            registry.histogram(f"span.{self.path}.peak_kb").observe(self.peak_kb)
        registry.histogram(f"span.{self.path}.seconds").observe(self.seconds)
        if self._trace is not None and self.span_id is not None:
            _capture(
                SpanRecord(
                    trace_id=self._trace.trace_id,
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                    name=self.name,
                    path=self.path,
                    start=self._wall_start,
                    seconds=self.seconds,
                    pid=os.getpid(),
                    run_id=self._trace.run_id,
                    error=bool(_exc and _exc[0] is not None),
                )
            )
        stack = _path_stack()
        ids = _id_stack()
        if stack and stack[-1] == self.name:
            stack.pop()
            if ids:
                ids.pop()


def span(
    name: str,
    *,
    registry: Optional[MetricsRegistry] = None,
    trace_memory: Optional[bool] = None,
    profile: Optional[Union[bool, str]] = None,
) -> Span:
    """Open a span named ``name`` on the current (or given) registry."""
    return Span(
        name, registry=registry, trace_memory=trace_memory, profile=profile
    )
