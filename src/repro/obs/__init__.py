"""Pipeline-wide telemetry: metrics registry, span tracing, exporters.

BAYWATCH is an operational system — the paper accounts for every filter
stage's data-volume reduction (Table 3) and for where cluster time is
spent.  This package gives the reproduction the same visibility:

- :mod:`repro.obs.registry` — counters, gauges, histograms (p50/p95/p99)
  and timers, scoped per run, with snapshot/merge aggregation across
  threads and MapReduce worker processes;
- :mod:`repro.obs.tracing` — nested wall-clock (and optional
  peak-memory) spans over the 8 filter stages, the MapReduce phases,
  and the detector's internal steps;
- :mod:`repro.obs.export` — the human run report (funnel + stage
  latency tables), JSON lines, Prometheus text format, and the trace
  renderers (ASCII tree + Chrome trace-event JSON);
- :mod:`repro.obs.journal` — the durable, append-only run event
  journal (``events.jsonl``): shard progress, retries, quarantines,
  pool restarts, worker heartbeats — safe under concurrent workers;
- :mod:`repro.obs.service` — the live status/metrics HTTP service
  (``/status``, ``/metrics``, ``/events``) behind ``repro run
  --status-port`` and ``repro watch``;
- :mod:`repro.obs.profiling` — span-level cProfile/tracemalloc hotspot
  collection (``span(..., profile=...)`` or ``REPRO_PROFILE``);
- :mod:`repro.obs.bench` / :mod:`repro.obs.bench_suites` — the
  machine-readable benchmark harness behind ``repro bench``:
  ``BENCH_<suite>.json`` reports and the regression gate.

Telemetry is **off by default** and free when off: the active registry
is a shared no-op unless ``REPRO_TELEMETRY=1`` is set or a caller
installs a real one (``scoped_registry(MetricsRegistry())`` or the CLI's
``--telemetry <dir>``).

See ``docs/OBSERVABILITY.md`` for metric/span naming and how to read
the run report.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

from repro.obs.export import (
    PROFILES_FILE,
    TELEMETRY_FILES,
    TRACE_FILE,
    from_jsonl,
    render_run_report,
    render_trace_tree,
    spans_from_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    write_telemetry,
)
from repro.obs.journal import (
    JOURNAL_FILE,
    JOURNAL_SCHEMA_VERSION,
    EventJournal,
    JournalSchemaError,
    get_journal,
    journal_emit,
    read_events,
    scoped_journal,
    set_journal,
    tail_events,
)
from repro.obs.provenance import (
    PROVENANCE_FILE,
    PROVENANCE_SCHEMA_VERSION,
    ProvenancePolicy,
    ProvenanceRecorder,
    ProvenanceSchemaError,
    VerdictRecord,
    audit_report,
    chain_outcome,
    diff_runs,
    group_chains,
    read_provenance,
    render_audit,
    render_diff,
    render_explain,
    write_provenance,
)
from repro.obs.service import (
    STATUS_SCHEMA_VERSION,
    StatusServer,
    build_status,
    render_status,
)
from repro.obs.profiling import (
    SpanProfile,
    drain_profiles,
    pending_profiles,
    profiles_from_jsonl,
    profiles_to_jsonl,
    render_profiles,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    get_registry,
    scoped_registry,
    set_registry,
    telemetry_enabled,
)
from repro.obs.tracing import (
    Span,
    SpanRecord,
    TraceContext,
    TraceNode,
    build_trace_tree,
    clear_spans,
    current_span_id,
    current_span_path,
    current_trace,
    drain_spans,
    new_run_id,
    new_span_id,
    new_trace_id,
    pending_spans,
    record_spans,
    scoped_trace,
    set_trace,
    span,
    start_trace,
    task_trace_payload,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "telemetry_enabled",
    "Span",
    "span",
    "current_span_path",
    "SpanRecord",
    "TraceContext",
    "TraceNode",
    "build_trace_tree",
    "clear_spans",
    "current_span_id",
    "current_trace",
    "drain_spans",
    "new_run_id",
    "new_span_id",
    "new_trace_id",
    "pending_spans",
    "record_spans",
    "scoped_trace",
    "set_trace",
    "start_trace",
    "task_trace_payload",
    "render_run_report",
    "render_trace_tree",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "from_jsonl",
    "to_prometheus",
    "write_telemetry",
    "TELEMETRY_FILES",
    "PROFILES_FILE",
    "TRACE_FILE",
    "JOURNAL_FILE",
    "JOURNAL_SCHEMA_VERSION",
    "JournalSchemaError",
    "EventJournal",
    "get_journal",
    "set_journal",
    "scoped_journal",
    "journal_emit",
    "read_events",
    "tail_events",
    "STATUS_SCHEMA_VERSION",
    "StatusServer",
    "build_status",
    "render_status",
    "PROVENANCE_FILE",
    "PROVENANCE_SCHEMA_VERSION",
    "ProvenancePolicy",
    "ProvenanceRecorder",
    "ProvenanceSchemaError",
    "VerdictRecord",
    "audit_report",
    "chain_outcome",
    "diff_runs",
    "group_chains",
    "read_provenance",
    "render_audit",
    "render_diff",
    "render_explain",
    "write_provenance",
    "SpanProfile",
    "drain_profiles",
    "pending_profiles",
    "profiles_to_jsonl",
    "profiles_from_jsonl",
    "render_profiles",
    "configure_logging",
    "LOG_FORMAT",
]

#: One consistent line format across every repro module.
LOG_FORMAT = "%(asctime)s %(levelname)-8s %(name)s: %(message)s"
LOG_DATE_FORMAT = "%Y-%m-%d %H:%M:%S"

_HANDLER_MARK = "_repro_obs_handler"


def configure_logging(
    level: int = logging.INFO, *, stream: Optional[TextIO] = None
) -> logging.Logger:
    """Attach one consistently formatted handler to the ``repro`` logger.

    Idempotent: calling it again only adjusts the level (and stream, if
    given), so libraries and the CLI can both call it safely.  Returns
    the package logger.  Logs go to ``stderr`` by default so they never
    corrupt report output on ``stdout``.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            if stream is not None:
                handler.setStream(stream)  # type: ignore[attr-defined]
            return logger
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, LOG_DATE_FORMAT))
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
