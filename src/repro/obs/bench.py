"""Machine-readable benchmark harness and regression gate.

BAYWATCH's evaluation is throughput-driven (30B+ events, per-stage
funnel volumes, cluster scale-out), so performance is a first-class
result here too.  This module turns ad-hoc timings into a *tracked perf
trajectory*:

- :class:`Benchmark` — one named measurement (a callable returning how
  many events one iteration processed);
- :class:`BenchRunner` — executes benchmarks with warmup/repeat
  control, computes p50/p95 via the obs :class:`~repro.obs.registry.
  Histogram`, probes peak allocations (tracemalloc) and peak RSS, and
  captures any counters the benchmarked code records (e.g. threshold-
  cache hits);
- :class:`BenchReport` — the JSON schema written to
  ``BENCH_<suite>.json`` at the repo root, stamped with a host/config
  fingerprint and the git SHA so runs are comparable across machines
  and commits;
- :func:`compare_reports` — the regression gate: a baseline/candidate
  delta table with a configurable tolerance, used by
  ``repro bench --compare`` and the CI perf-smoke job.

Suites (which benchmarks exist) live in :mod:`repro.obs.bench_suites`;
this module is deliberately stdlib-only so it can be imported from
anywhere without dragging in numpy or the pipeline.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.obs import profiling
from repro.obs.registry import MetricsRegistry, scoped_registry

__all__ = [
    "SCHEMA_VERSION",
    "Benchmark",
    "BenchResult",
    "BenchReport",
    "BenchRunner",
    "BenchDelta",
    "BenchComparison",
    "bench_path",
    "compare_reports",
    "render_bench_report",
    "render_comparison",
    "host_fingerprint",
    "git_sha",
]

#: Version of the ``BENCH_*.json`` / ``benchmarks/results/*.json`` layout.
SCHEMA_VERSION = 1

#: Default regression tolerance: candidate mean time may exceed the
#: baseline by this fraction before the gate fails.
DEFAULT_TOLERANCE = 0.10


def git_sha() -> Optional[str]:
    """The current git commit SHA, or None outside a work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def host_fingerprint() -> Dict[str, Any]:
    """Where and on what a report was produced (for comparability).

    Two reports from different machines/commits still compare — the
    fingerprint lets the comparator *say so* rather than silently mixing
    apples and oranges.
    """
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "node": platform.node(),
        "git_sha": git_sha(),
    }


def _max_rss_kb() -> Optional[float]:
    """Peak resident set size of this process in KiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return rss / 1024.0 if sys.platform == "darwin" else float(rss)


@dataclass
class Benchmark:
    """One named measurement.

    ``func`` runs one iteration and returns the number of *events* it
    processed (pairs analyzed, records mapped, ...) so the runner can
    derive throughput; returning None falls back to ``events``.
    ``cleanup`` (if given) runs once after all iterations — e.g. to shut
    down a worker pool.  ``metrics`` (if given) runs once after the
    timing repeats and returns named domain numbers — pairs/sec, window
    days, state-cache hit rate — that land in the result's ``metrics``
    map alongside the generic timing figures.
    """

    name: str
    func: Callable[[], Optional[int]]
    events: int = 1
    cleanup: Optional[Callable[[], None]] = None
    metrics: Optional[Callable[[], Dict[str, float]]] = None


@dataclass
class BenchResult:
    """Measurements of one benchmark: timing, throughput, memory."""

    name: str
    repeats: int
    warmup: int
    events: int
    seconds: Dict[str, float]
    samples: List[float]
    events_per_second: float
    peak_tracemalloc_kb: Optional[float] = None
    max_rss_kb: Optional[float] = None
    counters: Dict[str, int] = field(default_factory=dict)
    #: Named domain measurements (pairs/sec, window days, speedup, ...)
    #: a suite attaches beyond the generic timing/throughput figures.
    metrics: Dict[str, float] = field(default_factory=dict)
    hotspots: Optional[List[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "events": self.events,
            "seconds": dict(self.seconds),
            "samples": list(self.samples),
            "events_per_second": self.events_per_second,
            "peak_tracemalloc_kb": self.peak_tracemalloc_kb,
            "max_rss_kb": self.max_rss_kb,
        }
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.metrics:
            payload["metrics"] = dict(self.metrics)
        if self.hotspots is not None:
            payload["hotspots"] = list(self.hotspots)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchResult":
        return cls(
            name=str(payload["name"]),
            repeats=int(payload.get("repeats", len(payload.get("samples", [])))),
            warmup=int(payload.get("warmup", 0)),
            events=int(payload.get("events", 1)),
            seconds={k: float(v) for k, v in payload.get("seconds", {}).items()},
            samples=[float(v) for v in payload.get("samples", [])],
            events_per_second=float(payload.get("events_per_second", 0.0)),
            peak_tracemalloc_kb=payload.get("peak_tracemalloc_kb"),
            max_rss_kb=payload.get("max_rss_kb"),
            counters={
                k: int(v) for k, v in payload.get("counters", {}).items()
            },
            metrics={
                k: float(v) for k, v in payload.get("metrics", {}).items()
            },
            hotspots=payload.get("hotspots"),
        )


@dataclass
class BenchReport:
    """One suite run: fingerprinted, serializable, comparable.

    The JSON envelope (``schema`` / ``kind`` / ``suite`` / ``created`` /
    ``fingerprint`` / ``results``) is shared with the evaluation
    benches' ``benchmarks/results/*.json`` outputs, so one set of
    tooling reads both trajectories.
    """

    suite: str
    created: float
    fingerprint: Dict[str, Any]
    config: Dict[str, Any]
    results: List[BenchResult]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "bench",
            "suite": self.suite,
            "created": self.created,
            "fingerprint": dict(self.fingerprint),
            "config": dict(self.config),
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchReport":
        return cls(
            suite=str(payload["suite"]),
            created=float(payload.get("created", 0.0)),
            fingerprint=dict(payload.get("fingerprint", {})),
            config=dict(payload.get("config", {})),
            results=[
                BenchResult.from_dict(entry)
                for entry in payload.get("results", [])
            ],
        )

    def result(self, name: str) -> Optional[BenchResult]:
        """The named benchmark's result (None if absent)."""
        for entry in self.results:
            if entry.name == name:
                return entry
        return None

    def write(self, directory: Union[str, Path] = ".") -> Path:
        """Write ``BENCH_<suite>.json`` into ``directory``; return it."""
        path = bench_path(self.suite, directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchReport":
        """Read a report previously written by :meth:`write`."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def bench_path(suite: str, directory: Union[str, Path] = ".") -> Path:
    """The canonical ``BENCH_<suite>.json`` path for a suite."""
    return Path(directory) / f"BENCH_{suite}.json"


class BenchRunner:
    """Executes benchmarks with warmup/repeat control.

    ``clock`` is injectable (a ``() -> float`` monotonic source) so the
    runner itself is testable with a deterministic fake.  Timing repeats
    run *without* tracemalloc so the allocation probe — one extra
    iteration — never pollutes the latency numbers.  ``profile`` adds a
    further iteration under a hotspot collector (see
    :mod:`repro.obs.profiling`) and attaches the top-N table to the
    result.
    """

    def __init__(
        self,
        *,
        repeats: int = 5,
        warmup: int = 1,
        clock: Callable[[], float] = time.perf_counter,
        trace_memory: bool = True,
        profile: Optional[str] = None,
    ) -> None:
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if profile is not None and profile not in profiling.PROFILE_KINDS:
            raise ValueError(
                f"profile must be one of {profiling.PROFILE_KINDS}"
            )
        self.repeats = repeats
        self.warmup = warmup
        self._clock = clock
        self._trace_memory = trace_memory
        self._profile = profile

    def run(
        self, suite: str, benchmarks: Sequence[Benchmark]
    ) -> BenchReport:
        """Run every benchmark; return the fingerprinted report."""
        results = [self._run_one(bench) for bench in benchmarks]
        return BenchReport(
            suite=suite,
            created=time.time(),
            fingerprint=host_fingerprint(),
            config={
                "repeats": self.repeats,
                "warmup": self.warmup,
                "trace_memory": self._trace_memory,
                "profile": self._profile,
            },
            results=results,
        )

    def _run_one(self, bench: Benchmark) -> BenchResult:
        registry = MetricsRegistry()
        events = bench.events
        try:
            with scoped_registry(registry):
                for _ in range(self.warmup):
                    bench.func()
                samples: List[float] = []
                for _ in range(self.repeats):
                    start = self._clock()
                    returned = bench.func()
                    samples.append(self._clock() - start)
                    if returned is not None:
                        events = int(returned)
                peak_kb = self._memory_probe(bench)
                hotspots = self._profile_probe(bench)
                metrics = (
                    {k: float(v) for k, v in bench.metrics().items()}
                    if bench.metrics is not None
                    else {}
                )
        finally:
            if bench.cleanup is not None:
                bench.cleanup()
        histogram = registry.histogram(f"bench.{bench.name}.seconds")
        for value in samples:
            histogram.observe(value)
        quantiles = histogram.percentiles()
        mean = histogram.mean
        seconds = {
            "mean": mean,
            "min": min(samples),
            "max": max(samples),
            "total": histogram.total,
            "p50": quantiles["p50"],
            "p95": quantiles["p95"],
        }
        counters = {
            name: value
            for name, value in registry.counters()
            if not name.startswith("bench.")
        }
        # Convention: a suite that reports how many *pairs* one
        # iteration analyzed gets its pairs/sec derived here, from the
        # same mean the timing table shows.
        if "pairs" in metrics and "pairs_per_second" not in metrics and mean > 0:
            metrics["pairs_per_second"] = metrics["pairs"] / mean
        return BenchResult(
            name=bench.name,
            repeats=self.repeats,
            warmup=self.warmup,
            events=events,
            seconds=seconds,
            samples=samples,
            events_per_second=(events / mean) if mean > 0 else 0.0,
            peak_tracemalloc_kb=peak_kb,
            max_rss_kb=_max_rss_kb(),
            counters=counters,
            metrics=metrics,
            hotspots=hotspots,
        )

    def _memory_probe(self, bench: Benchmark) -> Optional[float]:
        if not self._trace_memory:
            return None
        started = not tracemalloc.is_tracing()
        if started:
            tracemalloc.start()
        tracemalloc.reset_peak()
        bench.func()
        _current, peak = tracemalloc.get_traced_memory()
        if started:
            tracemalloc.stop()
        return peak / 1024.0

    def _profile_probe(
        self, bench: Benchmark
    ) -> Optional[List[Dict[str, Any]]]:
        if self._profile is None:
            return None
        collector = profiling.start_collector(self._profile)
        if collector is None:
            return None
        bench.func()
        return collector.stop()


# -- regression comparator ---------------------------------------------------


@dataclass(frozen=True)
class BenchDelta:
    """One benchmark's baseline-vs-candidate verdict."""

    name: str
    baseline_seconds: Optional[float]
    candidate_seconds: Optional[float]
    change: Optional[float]  # (candidate - baseline) / baseline
    status: str  # pass | warn | fail | new | missing


@dataclass
class BenchComparison:
    """The full delta table plus the gate verdict."""

    baseline_suite: str
    candidate_suite: str
    tolerance: float
    deltas: List[BenchDelta]
    fingerprint_notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[BenchDelta]:
        return [delta for delta in self.deltas if delta.status == "fail"]

    @property
    def ok(self) -> bool:
        """True when no benchmark regressed beyond tolerance."""
        return not self.regressions


def compare_reports(
    baseline: BenchReport,
    candidate: BenchReport,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    warn_fraction: float = 0.5,
) -> BenchComparison:
    """Gate ``candidate`` against ``baseline`` on mean wall time.

    Per benchmark: slower by more than ``tolerance`` (fractional) →
    ``fail``; slower by more than ``tolerance * warn_fraction`` →
    ``warn``; otherwise ``pass``.  Benchmarks present on only one side
    are reported (``new`` / ``missing``) but never fail the gate —
    adding a benchmark must not need a baseline edit in the same PR.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    deltas: List[BenchDelta] = []
    seen = set()
    for base in baseline.results:
        seen.add(base.name)
        cand = candidate.result(base.name)
        base_mean = base.seconds.get("mean")
        if cand is None:
            deltas.append(
                BenchDelta(base.name, base_mean, None, None, "missing")
            )
            continue
        cand_mean = cand.seconds.get("mean")
        if not base_mean or cand_mean is None:
            deltas.append(
                BenchDelta(base.name, base_mean, cand_mean, None, "warn")
            )
            continue
        change = (cand_mean - base_mean) / base_mean
        if change > tolerance:
            status = "fail"
        elif change > tolerance * warn_fraction:
            status = "warn"
        else:
            status = "pass"
        deltas.append(
            BenchDelta(base.name, base_mean, cand_mean, change, status)
        )
    for cand in candidate.results:
        if cand.name not in seen:
            deltas.append(
                BenchDelta(
                    cand.name, None, cand.seconds.get("mean"), None, "new"
                )
            )
    notes = []
    for key in ("git_sha", "node", "python"):
        base_value = baseline.fingerprint.get(key)
        cand_value = candidate.fingerprint.get(key)
        if base_value != cand_value:
            notes.append(f"{key}: {base_value} -> {cand_value}")
    return BenchComparison(
        baseline_suite=baseline.suite,
        candidate_suite=candidate.suite,
        tolerance=tolerance,
        deltas=deltas,
        fingerprint_notes=notes,
    )


def _fmt_ms(seconds: Optional[float]) -> str:
    return f"{seconds * 1e3:10.3f}" if seconds is not None else f"{'-':>10s}"


def render_comparison(comparison: BenchComparison) -> str:
    """The delta table ``repro bench --compare`` prints."""
    lines = [
        f"== bench comparison: {comparison.baseline_suite} "
        f"(baseline) vs {comparison.candidate_suite} (candidate), "
        f"tolerance {comparison.tolerance * 100:.0f}% ==",
    ]
    for note in comparison.fingerprint_notes:
        lines.append(f"note: fingerprint differs — {note}")
    lines.append(
        f"{'benchmark':36s} {'base ms':>10s} {'cand ms':>10s} "
        f"{'delta':>8s}  status"
    )
    for delta in comparison.deltas:
        change = (
            f"{delta.change * 100:+7.1f}%" if delta.change is not None
            else f"{'-':>8s}"
        )
        lines.append(
            f"{delta.name:36s} {_fmt_ms(delta.baseline_seconds)} "
            f"{_fmt_ms(delta.candidate_seconds)} {change}  {delta.status}"
        )
    failed = comparison.regressions
    if failed:
        lines.append(
            f"FAIL: {len(failed)} benchmark(s) regressed beyond "
            f"{comparison.tolerance * 100:.0f}%: "
            + ", ".join(delta.name for delta in failed)
        )
    else:
        lines.append("OK: no regression beyond tolerance")
    return "\n".join(lines) + "\n"


def render_bench_report(report: BenchReport) -> str:
    """Human-readable summary table for one suite run."""
    sha = report.fingerprint.get("git_sha") or "unknown"
    lines = [
        f"== bench suite '{report.suite}' "
        f"(repeats={report.config.get('repeats')}, "
        f"warmup={report.config.get('warmup')}, git {str(sha)[:12]}) ==",
        f"{'benchmark':36s} {'mean ms':>10s} {'p50 ms':>10s} "
        f"{'p95 ms':>10s} {'events/s':>12s} {'alloc KiB':>10s}",
    ]
    for result in report.results:
        peak = (
            f"{result.peak_tracemalloc_kb:10.0f}"
            if result.peak_tracemalloc_kb is not None
            else f"{'-':>10s}"
        )
        lines.append(
            f"{result.name:36s} {_fmt_ms(result.seconds.get('mean'))} "
            f"{_fmt_ms(result.seconds.get('p50'))} "
            f"{_fmt_ms(result.seconds.get('p95'))} "
            f"{result.events_per_second:12.0f} {peak}"
        )
        if result.metrics:
            rendered = ", ".join(
                f"{key}={value:g}"
                for key, value in sorted(result.metrics.items())
            )
            lines.append(f"    metrics: {rendered}")
        if result.hotspots:
            for row in result.hotspots[:3]:
                if "tottime" in row:
                    detail = f"{row['tottime'] * 1e3:.2f} ms"
                else:
                    detail = f"{row.get('size_kb', 0.0):.1f} KiB"
                lines.append(f"    hot: {row['site']} ({detail})")
    return "\n".join(lines) + "\n"
