"""Named benchmark suites for ``repro bench``.

Seven suites cover the pipeline's cost structure:

- ``micro`` — the detector's hot paths in isolation: periodogram DFT
  (scalar and batched), permutation thresholding (cold and through the
  :class:`~repro.core.permutation.ThresholdCache`), ACF computation,
  candidate pruning, and the full per-pair ``detect`` call.  These are
  the per-pair costs that bound "millions of pairs per day".
- ``pipeline`` — the end-to-end 8-step funnel over one synthetic
  enterprise window (events/sec here is the headline ingest rate).
- ``mapreduce`` — the local engine's map/shuffle/reduce machinery,
  serial vs. a 2-worker process pool, isolating dispatch overhead from
  detector cost.
- ``detection_batch`` — the batched multi-pair fast path
  (:mod:`repro.core.batch`) against the per-pair baseline on a seeded
  1k-pair workload, with and without a warm shared
  :class:`~repro.core.permutation.ThresholdCache`.
- ``scalability`` — one batched-FFT detection workload through the
  MapReduce engine under each local execution backend (serial inline,
  2- and 4-thread pools, a 2-process pool), pricing dispatch overhead
  against the GIL-releasing kernels' thread scaling.
- ``incremental`` — the rolling-window tick: cold full-window
  recomputation (fused merge + full batched detector, GMM screen on)
  against the warm sliding-DFT append path of
  :class:`~repro.stages.IncrementalDetection` on a 30-day, 1k-pair
  window stepped one day per tick.  The committed baseline records the
  warm path >= 8x faster per tick; the CI gate requires >= 5x.
- ``ingestion`` — both ingestion planes at 1x and 4x the record count
  over a fixed pair population: streaming record-to-summary grouping
  (:func:`repro.sources.proxy.records_to_summaries`) against the
  columnar vectorized fold
  (:func:`repro.sources.columnar.summaries_from_chunks`).  Because the
  object-path accumulator keeps per-pair slot counts (not records), the
  ``peak_tracemalloc_kb`` probe must stay near-flat as the record count
  quadruples — the sub-linear-memory guarantee of the streaming path —
  while the columnar fold must hold a ≥10x events/sec lead over it.

Workloads are deterministic (fixed seeds) and sized so the micro suite
finishes in seconds — small enough for a CI smoke job, large enough
that a 2x hot-path regression moves the numbers far beyond the gate
tolerance.  Everything expensive (simulation, LM training) happens at
suite *build* time so iterations measure only the code under test.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

import numpy as np

from repro.mapreduce.job import MapReduceJob
from repro.obs.bench import Benchmark

__all__ = ["SUITES", "build_suite", "suite_names"]

DAY = 86_400.0


def _binary_signal(
    rng: np.random.Generator, n_slots: int, period: int
) -> np.ndarray:
    """A jittered binary beacon signal binned at 1 event / period."""
    signal = np.zeros(n_slots)
    slots = np.arange(0, n_slots, period)
    jitter = rng.integers(-1, 2, size=slots.size)
    slots = np.clip(slots + jitter, 0, n_slots - 1)
    signal[slots] = 1.0
    return signal


def build_micro_suite() -> List[Benchmark]:
    """Hot-path microbenches over the core detector steps."""
    from repro.core.autocorrelation import autocorrelation
    from repro.core.detector import DetectorConfig, PeriodicityDetector
    from repro.core.periodogram import batch_max_power, power_spectrum
    from repro.core.permutation import ThresholdCache, permutation_threshold
    from repro.core.pruning import prune_candidates
    from repro.synthetic.beacon import BeaconSpec
    from repro.synthetic.background import browsing_trace

    rng = np.random.default_rng(7)
    signals = [
        _binary_signal(rng, 1024, period)
        for period in (8, 13, 21, 34, 55, 89, 144, 233)
    ] * 4  # 32 signals
    batch = np.stack(signals)

    def run_power_spectrum() -> int:
        for signal in signals:
            power_spectrum(signal)
        return len(signals)

    def run_batch_max_power() -> int:
        batch_max_power(batch)
        return batch.shape[0]

    perm_signals = signals[:8]

    def run_permutation() -> int:
        perm_rng = np.random.default_rng(0)
        for signal in perm_signals:
            permutation_threshold(signal, permutations=20, rng=perm_rng)
        return len(perm_signals)

    cache = ThresholdCache()
    lookup_rng = np.random.default_rng(11)
    lookups = [
        (int(n), int(k))
        for n, k in zip(
            lookup_rng.integers(64, 4096, size=256),
            lookup_rng.integers(4, 64, size=256),
        )
    ]

    def run_threshold_cache() -> int:
        for n_slots, n_ones in lookups:
            cache.threshold(n_slots, n_ones)
        return len(lookups)

    acf_signals = [
        _binary_signal(rng, 4096, period) for period in (31, 67, 131, 257)
    ] * 4  # 16 signals

    def run_acf() -> int:
        for signal in acf_signals:
            autocorrelation(signal)
        return len(acf_signals)

    interval_rng = np.random.default_rng(3)
    interval_sets = [
        np.abs(interval_rng.normal(period, period * 0.05, size=200))
        for period in (60.0, 300.0, 900.0)
    ]
    candidate_periods = [30.0, 59.5, 60.0, 61.0, 120.0, 300.0, 905.0]

    def run_pruning() -> int:
        for intervals in interval_sets:
            prune_candidates(candidate_periods, intervals)
        return len(interval_sets) * len(candidate_periods)

    detector = PeriodicityDetector(
        DetectorConfig(seed=0), threshold_cache=ThresholdCache()
    )
    trace_rng = np.random.default_rng(5)
    sparse_traces = [
        trace
        for trace in (
            browsing_trace(
                DAY, np.random.default_rng(seed), session_rate=0.5 / 3600.0
            )
            for seed in range(8)
        )
        if trace.size >= 4
    ]
    dense_trace = BeaconSpec(period=120.0, duration=DAY).generate(trace_rng)

    def run_detect_sparse() -> int:
        for trace in sparse_traces:
            detector.detect(trace)
        return len(sparse_traces)

    def run_detect_beacon() -> int:
        detector.detect(dense_trace)
        return 1

    return [
        Benchmark("periodogram.power_spectrum", run_power_spectrum),
        Benchmark("periodogram.batch_max_power", run_batch_max_power),
        Benchmark("permutation.threshold", run_permutation),
        Benchmark("permutation.threshold_cache", run_threshold_cache),
        Benchmark("autocorrelation.acf", run_acf),
        Benchmark("pruning.prune_candidates", run_pruning),
        Benchmark("detector.detect_sparse_pairs", run_detect_sparse),
        Benchmark("detector.detect_dense_beacon", run_detect_beacon),
    ]


def build_pipeline_suite() -> List[Benchmark]:
    """End-to-end 8-step funnel over one synthetic enterprise window."""
    from repro.filtering.pipeline import BaywatchPipeline, PipelineConfig
    from repro.lm.domains import default_scorer
    from repro.synthetic.enterprise import EnterpriseConfig, EnterpriseSimulator

    config = EnterpriseConfig(
        n_hosts=12, n_sites=30, duration=2 * 3600.0, seed=5
    )
    records, _truth = EnterpriseSimulator(config).generate()
    scorer = default_scorer()  # train the LM once, outside the timing

    def run_pipeline() -> int:
        pipeline = BaywatchPipeline(
            PipelineConfig(
                local_whitelist_threshold=0.15, ranking_percentile=0.0
            ),
            scorer=scorer,
        )
        pipeline.run_records(records)
        return len(records)

    from repro.obs.provenance import ProvenancePolicy

    def run_pipeline_provenance() -> int:
        # Same funnel with decision provenance at the default sampling
        # policy: the delta against ``pipeline.run_records`` is the
        # provenance overhead, bounded at 5% by the acceptance gate.
        pipeline = BaywatchPipeline(
            PipelineConfig(
                local_whitelist_threshold=0.15,
                ranking_percentile=0.0,
                provenance=ProvenancePolicy(),
            ),
            scorer=scorer,
        )
        pipeline.run_records(records)
        return len(records)

    return [
        Benchmark("pipeline.run_records", run_pipeline),
        Benchmark("pipeline.run_records_provenance", run_pipeline_provenance),
    ]


class _PairCountJob(MapReduceJob):
    """Count events per (source, destination) pair — a shuffle-heavy job.

    Defined at module scope (and over plain tuples) so it pickles into
    worker processes, exactly as the engine requires.
    """

    n_partitions = 8

    def map(self, key, value) -> Iterator:
        source, destination = value
        yield (source, destination), 1

    def reduce(self, key, values) -> Iterator:
        yield key, sum(values)


def build_mapreduce_suite() -> List[Benchmark]:
    """Engine scaling: serial vs. a 2-worker pool on the same job."""
    from repro.mapreduce.engine import MapReduceEngine

    rng = np.random.default_rng(17)
    inputs = [
        (index, (f"host{rng.integers(50)}", f"dst{rng.integers(200)}"))
        for index in range(4000)
    ]
    job = _PairCountJob()
    serial = MapReduceEngine(n_workers=1)
    parallel = MapReduceEngine(n_workers=2, min_parallel_records=64)

    def run_serial() -> int:
        serial.run(job, inputs)
        return len(inputs)

    def run_parallel() -> int:
        parallel.run(job, inputs)
        return len(inputs)

    return [
        Benchmark("mapreduce.serial", run_serial, cleanup=serial.close),
        Benchmark(
            "mapreduce.workers2", run_parallel, cleanup=parallel.close
        ),
    ]


def _ingestion_records(factor: int) -> List:
    """``factor`` events per pair per minute over a fixed pair set.

    Extra events land inside the *same* one-second time bin as the
    base event, so the streaming accumulator's state (per-pair slot
    counts plus a capped URL sample) is identical across factors while
    the record count scales linearly.  The stream is time-ordered, as a
    real proxy log is — the shape the columnar fold's single-sort fast
    path is built for.
    """
    from repro.sources.proxy import ProxyLogRecord

    records = []
    for host in range(8):
        for site in range(2):
            source = f"aa:bb:cc:00:00:{host:02x}"
            destination = f"svc{site}.example.net"
            for minute in range(750):
                for repeat in range(factor):
                    records.append(
                        ProxyLogRecord(
                            timestamp=minute * 60.0 + repeat / (factor + 1.0),
                            source_mac=source,
                            source_ip=f"10.0.0.{host + 1}",
                            destination=destination,
                            url=f"/poll?h={host}&r={repeat}",
                        )
                    )
    records.sort(key=lambda record: record.timestamp)
    return records


def build_ingestion_suite() -> List[Benchmark]:
    """Both ingestion planes at 1x and 4x record counts.

    - ``ingest.records_to_summaries_{1x,4x}`` — the per-record object
      path: one Python-level accumulator update per record (with the
      ``peak_tracemalloc_kb`` probe guarding its sub-linear memory).
    - ``ingest.columnar_fold_{1x,4x}`` — the columnar plane folding
      pre-built :class:`~repro.sources.columnar.RecordChunk` batches
      through the vectorized accumulator.  Both planes start from an
      in-memory representation of the same events and produce identical
      summaries, so events/sec here is the data-plane speedup — the
      tentpole gate compares ``columnar_fold_4x`` against
      ``records_to_summaries_4x``.
    """
    from repro.sources.columnar import records_to_chunks, summaries_from_chunks
    from repro.sources.proxy import records_to_summaries

    base = _ingestion_records(1)
    scaled = _ingestion_records(4)
    base_chunks = list(records_to_chunks(base))
    scaled_chunks = list(records_to_chunks(scaled))

    def run_1x() -> int:
        records_to_summaries(iter(base))
        return len(base)

    def run_4x() -> int:
        records_to_summaries(iter(scaled))
        return len(scaled)

    def run_columnar_1x() -> int:
        summaries_from_chunks(base_chunks)
        return len(base)

    def run_columnar_4x() -> int:
        summaries_from_chunks(scaled_chunks)
        return len(scaled)

    return [
        Benchmark("ingest.records_to_summaries_1x", run_1x),
        Benchmark("ingest.records_to_summaries_4x", run_4x),
        Benchmark("ingest.columnar_fold_1x", run_columnar_1x),
        Benchmark("ingest.columnar_fold_4x", run_columnar_4x),
    ]


def _detection_workload(
    n_pairs: int = 1024, *, beacon_fraction: float = 0.05, seed: int = 42
) -> List:
    """Seeded enterprise-shaped pair set: mostly noise, a few beacons.

    The mix mirrors the paper's population (periodic pairs are rare at
    enterprise scale); beacon periods span 60-600 s with 3% jitter over
    one day, noise pairs are sparse uniform traffic.
    """
    from repro.core.timeseries import ActivitySummary

    rng = np.random.default_rng(seed)
    summaries = []
    for index in range(n_pairs):
        if rng.random() < beacon_fraction:
            period = float(rng.uniform(60.0, 600.0))
            count = int(DAY / period)
            ts = np.cumsum(rng.normal(period, period * 0.03, size=count))
            ts = ts[(ts > 0) & (ts < DAY)]
        else:
            ts = np.sort(
                rng.uniform(0, DAY, size=int(rng.integers(5, 120)))
            )
        summaries.append(
            ActivitySummary.from_timestamps(
                f"host-{index}",
                f"dest-{index % 37}",
                ts,
                time_scale=30.0,
            )
        )
    return summaries


def _threshold_grid(summaries, config) -> set:
    """The ``(n_slots, n_ones)`` grid a workload's detection will probe.

    Walks each pair's scale ladder exactly as
    ``PeriodicityDetector._choose_scales`` does and estimates the binned
    shape per rung.  The estimate only has to land in the right
    geometric bucket — any residual misses fill lazily at full accuracy.
    """
    grid = set()
    for summary in summaries:
        ts = np.asarray(summary.timestamps())
        if ts.size < 4 or ts[-1] == ts[0]:
            continue
        duration = float(ts[-1] - ts[0])
        scale = summary.time_scale
        for _ in range(config.max_scales):
            n_slots = int(np.floor(duration / scale)) + 1
            if n_slots < config.min_slots:
                break
            grid.add((n_slots, int(min(ts.size, n_slots))))
            scale *= config.scale_factor
    return grid


def build_detection_batch_suite() -> List[Benchmark]:
    """Batched fast path vs per-pair detection on a 1k-pair workload.

    - ``detection.per_pair`` — the pre-PR execution model: a serial
      ``detect_summary`` loop over 64-pair partitions, each with its own
      cold :class:`~repro.core.permutation.ThresholdCache` (every
      sharded worker used to re-derive every bucket from scratch).
    - ``detection.batched_cold`` — the shape-grouped kernels with a
      fresh cold cache per iteration: the kernel-only gain.
    - ``detection.batched`` — kernels plus one precomputed warm shared
      cache (warmed at suite build time; warmth is the shareable,
      persistable artifact the runner ships to workers).
    - ``detection.batched_provenance`` — the warm batched path plus
      per-pair verdict-record derivation at the default provenance
      sampling policy (the bound on decision-provenance overhead).
    - ``detection.cache_precompute`` — cost of warming that cache from
      the workload grid (the one-time setup the warm path amortizes).

    All the detection variants produce bit-identical results (the
    parity suite enforces this); the GMM interval screen is disabled so
    the suite isolates the spectral path the kernels accelerate.
    """
    from repro.core.batch import BatchedDetector
    from repro.core.detector import DetectorConfig, PeriodicityDetector
    from repro.core.permutation import ThresholdCache

    summaries = _detection_workload(1024)
    config = DetectorConfig(seed=0, use_gmm=False)
    grid = _threshold_grid(summaries, config)
    partition = 64

    def run_per_pair() -> int:
        for start in range(0, len(summaries), partition):
            detector = PeriodicityDetector(
                config, threshold_cache=ThresholdCache()
            )
            for summary in summaries[start : start + partition]:
                detector.detect_summary(summary)
        return len(summaries)

    def run_batched_cold() -> int:
        detector = PeriodicityDetector(
            config, threshold_cache=ThresholdCache()
        )
        BatchedDetector(detector, batch_size=256).detect_summaries(summaries)
        return len(summaries)

    warm_cache = ThresholdCache()
    warm_cache.precompute(grid)

    def run_batched_warm() -> int:
        detector = PeriodicityDetector(config, threshold_cache=warm_cache)
        BatchedDetector(detector, batch_size=256).detect_summaries(summaries)
        return len(summaries)

    def run_precompute() -> int:
        ThresholdCache().precompute(grid)
        return len(grid)

    from repro.obs.provenance import ProvenancePolicy
    from repro.stages import detection_verdicts

    policy = ProvenancePolicy()

    def run_batched_provenance() -> int:
        # Warm batched detection plus per-pair verdict derivation at the
        # default sampling policy — what a provenance-enabled executor
        # does per shard; delta vs ``detection.batched`` is the overhead.
        detector = PeriodicityDetector(config, threshold_cache=warm_cache)
        results = BatchedDetector(
            detector, batch_size=256
        ).detect_summaries(summaries)
        for summary, result in zip(summaries, results):
            detection_verdicts(
                summary.source, summary.destination, result, policy
            )
        return len(summaries)

    detection_metrics = lambda: {"pairs": 1024.0, "window_days": 1.0}  # noqa: E731
    return [
        Benchmark("detection.per_pair", run_per_pair, metrics=detection_metrics),
        Benchmark(
            "detection.batched_cold", run_batched_cold, metrics=detection_metrics
        ),
        Benchmark("detection.batched", run_batched_warm, metrics=detection_metrics),
        Benchmark(
            "detection.batched_provenance",
            run_batched_provenance,
            metrics=detection_metrics,
        ),
        Benchmark("detection.cache_precompute", run_precompute),
    ]


def build_scalability_suite() -> List[Benchmark]:
    """One batched-FFT detection workload under every local backend.

    The same 512-pair detection job (shape-grouped FFT/ACF kernels, one
    warm shared :class:`~repro.core.permutation.ThresholdCache`) runs
    through the MapReduce engine under each executor:

    - ``scalability.serial`` — the inline baseline;
    - ``scalability.threads_2`` / ``scalability.threads_4`` — worker
      threads.  The batched kernels spend their time in scipy.fft and
      numpy linalg calls that release the GIL, so threads scale them
      across cores with zero pickling — the perf-smoke gate requires
      ``threads_2`` to hold ≥1.5x ``serial`` events/sec on multi-core
      machines;
    - ``scalability.processes_2`` — the process pool, which pays
      job/summary pickling per task in exchange for full isolation.

    Reports across backends are bit-identical (the parity suite owns
    that guarantee); this suite prices the dispatch mechanisms.  The
    multi-host shard queue is deliberately absent — its cost is
    filesystem round-trips, meaningless on a single-machine bench.
    """
    from repro.core.detector import DetectorConfig
    from repro.core.permutation import ThresholdCache
    from repro.jobs.detection import BeaconingDetectionJob
    from repro.mapreduce.engine import MapReduceEngine

    summaries = _detection_workload(512)
    config = DetectorConfig(seed=0, use_gmm=False)
    warm_cache = ThresholdCache()
    warm_cache.precompute(_threshold_grid(summaries, config))
    job = BeaconingDetectionJob(
        config,
        batch_size=64,
        use_threshold_cache=True,
        threshold_cache=warm_cache,
    )
    inputs = [(summary.pair, summary) for summary in summaries]

    def bench(name: str, executor: str, n_workers: int) -> Benchmark:
        engine = MapReduceEngine(
            n_workers=n_workers,
            executor=executor,
            min_parallel_records=64,
        )

        def run() -> int:
            engine.run(job, inputs)
            return len(inputs)

        return Benchmark(
            f"scalability.{name}",
            run,
            cleanup=engine.close,
            metrics=lambda: {"pairs": float(len(inputs)), "window_days": 1.0},
        )

    return [
        bench("serial", "serial", 1),
        bench("threads_2", "threads", 2),
        bench("threads_4", "threads", 4),
        bench("processes_2", "processes", 2),
    ]


def _rolling_window_days(
    n_pairs: int, n_days: int, *, time_scale: float = 600.0, seed: int = 7
) -> List[List]:
    """Per-day per-pair summaries of a rolling-window workload.

    ~3% of pairs beacon with periods ``7200 + 120 * (pair % 17)`` s
    (jitter sigma 5 s); the rest are sparse noise at 8 events/day.  The
    shape matches an operator stepping a 30-day window daily: every
    pair is active every day, so day ``d``'s list holds the pairs in a
    fixed order.
    """
    from repro.core.timeseries import ActivitySummary

    rng = np.random.default_rng(seed)
    span = n_days * DAY
    per_pair: List[np.ndarray] = []
    for pair in range(n_pairs):
        if pair % 100 < 3:
            period = 7200.0 + 120.0 * (pair % 17)
            count = int(span / period) + 1
            ts = np.cumsum(rng.normal(period, 5.0, size=count))
            ts = ts[(ts > 0) & (ts < span)]
        else:
            # Exactly 8 events per day: uniform-over-span draws leave
            # the occasional pair-day empty, which would make the pair
            # set vary across days.
            offsets = rng.uniform(0, DAY, size=(n_days, 8))
            ts = np.sort(
                (offsets + np.arange(n_days)[:, None] * DAY).ravel()
            )
        per_pair.append(ts)
    days: List[List] = []
    for day in range(n_days):
        start, end = day * DAY, (day + 1) * DAY
        entries = []
        for pair, ts in enumerate(per_pair):
            chunk = ts[(ts >= start) & (ts < end)]
            entries.append(
                ActivitySummary.from_timestamps(
                    f"host-{pair:04d}",
                    f"dest-{pair % 53}.example.net",
                    chunk,
                    time_scale=time_scale,
                )
            )
        days.append(entries)
    return days


def build_incremental_suite() -> List[Benchmark]:
    """Cold full-window recompute vs the warm incremental append path.

    A 30-day window over 1k pairs stepped one day per tick — the
    rolling-window shape :class:`~repro.stages.IncrementalDetection`
    exists for:

    - ``incremental.cold_recompute`` — one tick the pre-incremental
      way: fuse-merge the trailing window per pair, then run the full
      batched detector (default configuration, GMM interval screen
      *on*, warm shared threshold cache) over every pair.
    - ``incremental.warm_append_day`` — the same tick through a
      persistent incremental executor: per-pair sliding-DFT states
      advance by the new day, the two-stage screen (threshold screen,
      then candidate probe on the maintained spectra) rejects the
      non-periodic bulk, and only survivors pay full detection.  The
      executor is warmed at build time (the tick-0 state build plus one
      append), so every timed iteration measures the steady state; each
      iteration slides to a *new* day.  Engine counters (slides,
      rebuilds, screen hit rate) land in the result's ``metrics``.
    - ``incremental.state_roundtrip`` — serializing and restoring the
      warm state cache, the cost a checkpointed run pays per persist.

    The perf-smoke gate requires warm/cold >= 5x on mean tick time (the
    committed baseline records >= 8x); report parity between the two
    paths is owned by the executor-parity tests, not this suite.
    """
    from repro.core.batch import BatchedDetector
    from repro.core.detector import DetectorConfig, PeriodicityDetector
    from repro.core.permutation import ThresholdCache
    from repro.core.timeseries import merge_rescaled
    from repro.stages import IncrementalDetection, StageContext
    from repro.filtering.pipeline import PipelineConfig

    n_pairs, window_days, time_scale = 1000, 30, 600.0
    total_days = 64  # enough fresh days for warmup + repeats + probes
    day_summaries = _rolling_window_days(
        n_pairs, total_days, time_scale=time_scale
    )
    config = DetectorConfig(seed=0)  # defaults: GMM screen on
    warm_cache = ThresholdCache()
    workspace = np.empty(0, dtype=float)

    def window_summaries(end_day: int) -> List:
        nonlocal workspace
        window = day_summaries[end_day - window_days + 1 : end_day + 1]
        merged = []
        for group in zip(*window):
            total = sum(s.event_count for s in group)
            if workspace.size < total:
                workspace = np.empty(total, dtype=float)
            merged.append(
                merge_rescaled(list(group), time_scale, out=workspace)
            )
        return merged

    def run_cold() -> int:
        summaries = window_summaries(window_days - 1)
        detector = PeriodicityDetector(config, threshold_cache=warm_cache)
        BatchedDetector(detector, batch_size=256).detect_summaries(summaries)
        return n_pairs

    pipeline_config = PipelineConfig(
        detector=config,
        incremental_detection=True,
        detection_batch_size=256,
    )
    context = StageContext(config=pipeline_config, threshold_cache=warm_cache)
    executor = IncrementalDetection(batch_size=256)
    cursor = window_days - 1

    def warm_tick() -> int:
        nonlocal cursor
        executor(context, window_summaries(cursor))
        # Advance while fresh days remain; past the end, re-running the
        # final day costs a no-op slide, which would *flatter* the
        # numbers — total_days is sized so timed repeats never get there.
        cursor = min(cursor + 1, total_days - 1)
        return n_pairs

    warm_tick()  # tick 0: full state build (the one-time cold cost)
    warm_tick()  # one append so steady-state timing starts clean

    def engine_metrics() -> Dict[str, float]:
        engine = executor.engine
        out = {"pairs": float(n_pairs), "window_days": float(window_days)}
        if engine is not None:
            out.update(
                slides=float(engine.slides),
                rebuilds=float(engine.rebuilds),
                refreshes=float(engine.refreshes),
                fallbacks=float(engine.fallbacks),
                screened_out=float(engine.screened_out),
                screened_in=float(engine.screened_in),
                state_cache_hit_rate=float(engine.hit_rate()),
            )
        return out

    def run_roundtrip() -> int:
        import tempfile
        from pathlib import Path as _Path

        from repro.core.incremental import IncrementalStateCache

        engine = executor.engine
        if engine is None:  # pragma: no cover - warmed above
            return 0
        with tempfile.TemporaryDirectory() as tmp:
            path = _Path(tmp) / "incremental-state.bin"
            engine.cache.save(path)
            IncrementalStateCache.load(
                path, fingerprint=engine.cache.fingerprint
            )
        return len(engine.cache)

    return [
        Benchmark(
            "incremental.cold_recompute",
            run_cold,
            metrics=lambda: {
                "pairs": float(n_pairs),
                "window_days": float(window_days),
            },
        ),
        Benchmark(
            "incremental.warm_append_day", warm_tick, metrics=engine_metrics
        ),
        Benchmark("incremental.state_roundtrip", run_roundtrip),
    ]


#: Suite name -> builder.  Builders are lazy: heavy imports and workload
#: construction happen only when a suite is actually requested.
SUITES: Dict[str, Callable[[], List[Benchmark]]] = {
    "micro": build_micro_suite,
    "pipeline": build_pipeline_suite,
    "mapreduce": build_mapreduce_suite,
    "ingestion": build_ingestion_suite,
    "detection_batch": build_detection_batch_suite,
    "scalability": build_scalability_suite,
    "incremental": build_incremental_suite,
}


def suite_names() -> List[str]:
    """All known suite names, sorted."""
    return sorted(SUITES)


def build_suite(name: str) -> List[Benchmark]:
    """Build the named suite's benchmarks (raises KeyError if unknown)."""
    try:
        builder = SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown bench suite {name!r}; known: {', '.join(suite_names())}"
        ) from None
    return builder()
