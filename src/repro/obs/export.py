"""Exporters: run report (text), JSON lines, Prometheus text format.

Three consumers, three formats:

- :func:`render_run_report` — the analyst-facing summary: the funnel
  table (the paper's Table 3 data-volume-reduction view), a stage
  latency table built from span histograms, and the raw counters and
  gauges (cache hit rates, MapReduce job stats, retry counts).
- :func:`to_jsonl` — one JSON object per line for machine consumption;
  :func:`from_jsonl` round-trips it (this is what ``repro stats``
  reads).
- :func:`to_prometheus` — Prometheus-style text exposition (counters as
  ``_total``, histograms as ``_count``/``_sum`` plus quantile samples)
  for scraping into an existing monitoring stack.

:func:`write_telemetry` writes all three into a directory —
``report.txt``, ``metrics.jsonl``, ``metrics.prom`` — each atomically
(tmp file + rename, the same discipline as checkpoint shards) so a
killed run never leaves a truncated telemetry file behind.  When
distributed tracing collected span records (see
:mod:`repro.obs.tracing`) they are drained into ``trace.jsonl``
alongside; ``repro trace`` renders them (:func:`render_trace_tree`) or
exports Chrome trace-event JSON (:func:`to_chrome_trace`,
Perfetto/chrome://tracing loadable).
"""

from __future__ import annotations

import json
import math
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs import profiling
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import (
    SpanRecord,
    TraceNode,
    build_trace_tree,
    drain_spans,
)

__all__ = [
    "render_run_report",
    "to_jsonl",
    "from_jsonl",
    "to_prometheus",
    "write_telemetry",
    "TELEMETRY_FILES",
    "PROFILES_FILE",
    "TRACE_FILE",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "render_trace_tree",
    "to_chrome_trace",
]

#: Files produced by :func:`write_telemetry` in the target directory.
TELEMETRY_FILES = ("report.txt", "metrics.jsonl", "metrics.prom")

#: Span-profile hotspots (written only when profiling collected any).
PROFILES_FILE = "profiles.jsonl"

#: Distributed-trace span records (written only when tracing collected any).
TRACE_FILE = "trace.jsonl"

#: A funnel is a FunnelStats-like object (with ``.steps``) or the raw
#: list of (step_name, pairs_in, pairs_out) triples.
FunnelLike = Union[Any, Sequence[Tuple[str, int, int]]]

_SPAN_SECONDS = re.compile(r"^span\.(?P<path>.+)\.seconds$")


def _funnel_steps(funnel: Optional[FunnelLike]) -> List[Tuple[str, int, int]]:
    if funnel is None:
        return []
    steps = getattr(funnel, "steps", funnel)
    return [(str(name), int(n_in), int(n_out)) for name, n_in, n_out in steps]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:9.3f}s"
    return f"{seconds * 1e3:8.2f}ms"


# -- human-readable run report ---------------------------------------------


def _summary_line(registry: MetricsRegistry) -> Optional[str]:
    """One glanceable health line: cache effectiveness and retries.

    The raw counters are further down the report; the two an operator
    actually scans for — is the ThresholdCache pulling its weight, and
    did any MapReduce tasks need retrying — get surfaced up top.
    """
    counters = dict(registry.counters())
    parts: List[str] = []
    hits = counters.get("detector.threshold_cache.hits", 0)
    misses = counters.get("detector.threshold_cache.misses", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        parts.append(
            f"threshold cache {rate:.1f}% hits ({hits}/{hits + misses})"
        )
    if any(name.startswith("mapreduce.") for name in counters):
        retries = counters.get("mapreduce.task_retries", 0)
        parts.append(f"mapreduce task retries {retries}")
        restarts = counters.get("mapreduce.pool_restarts", 0)
        if restarts:
            parts.append(f"pool restarts {restarts}")
        quarantined = counters.get("mapreduce.tasks_quarantined", 0)
        if quarantined:
            parts.append(f"tasks quarantined {quarantined}")
        resumed = counters.get("mapreduce.shards_resumed", 0)
        if resumed:
            parts.append(f"shards resumed {resumed}")
    if not parts:
        return None
    return "summary: " + "; ".join(parts)


def render_run_report(
    registry: MetricsRegistry,
    *,
    funnel: Optional[FunnelLike] = None,
    title: str = "BAYWATCH run report",
) -> str:
    """The analyst-facing text report (funnel + latency + counters)."""
    lines: List[str] = [f"== {title} =="]

    summary = _summary_line(registry)
    if summary is not None:
        lines.append(summary)

    steps = _funnel_steps(funnel)
    if steps:
        lines.append("")
        lines.append("-- funnel: data volume reduction (Table 3 view) --")
        lines.append(f"{'step':34s} {'in':>10s} {'out':>10s} {'kept':>7s}")
        for name, n_in, n_out in steps:
            kept = f"{100.0 * n_out / n_in:6.2f}%" if n_in else "     -"
            lines.append(f"{name:34s} {n_in:>10d} {n_out:>10d} {kept:>7s}")
        first_in = steps[0][1]
        last_out = steps[-1][2]
        if first_in:
            lines.append(
                f"{'total reduction':34s} {first_in:>10d} {last_out:>10d} "
                f"{100.0 * last_out / first_in:6.2f}%"
            )

    latency_rows = []
    other_histograms = []
    for histogram in registry.histograms():
        match = _SPAN_SECONDS.match(histogram.name)
        if match:
            latency_rows.append((match.group("path"), histogram))
        else:
            other_histograms.append(histogram)

    if latency_rows:
        lines.append("")
        lines.append("-- stage latency (wall clock) --")
        lines.append(
            f"{'span':44s} {'calls':>6s} {'total':>10s} {'mean':>10s} "
            f"{'p50':>10s} {'p95':>10s} {'p99':>10s}"
        )
        for path, h in latency_rows:
            q = h.percentiles()
            lines.append(
                f"{path:44s} {h.count:>6d} {_fmt_seconds(h.total):>10s} "
                f"{_fmt_seconds(h.mean):>10s} {_fmt_seconds(q['p50']):>10s} "
                f"{_fmt_seconds(q['p95']):>10s} {_fmt_seconds(q['p99']):>10s}"
            )

    counters = list(registry.counters())
    if counters:
        lines.append("")
        lines.append("-- counters --")
        for name, value in counters:
            lines.append(f"{name:58s} {value:>12d}")

    gauges = list(registry.gauges())
    if gauges:
        lines.append("")
        lines.append("-- gauges --")
        for name, value in gauges:
            lines.append(f"{name:58s} {value:>12g}")

    if other_histograms:
        lines.append("")
        lines.append("-- distributions --")
        lines.append(
            f"{'histogram':44s} {'count':>6s} {'mean':>10s} {'p50':>10s} "
            f"{'p95':>10s} {'p99':>10s} {'max':>10s}"
        )
        for h in other_histograms:
            q = h.percentiles()
            maximum = h.max if h.count else 0.0
            lines.append(
                f"{h.name:44s} {h.count:>6d} {h.mean:>10.3f} "
                f"{q['p50']:>10.3f} {q['p95']:>10.3f} {q['p99']:>10.3f} "
                f"{maximum:>10.3f}"
            )

    if len(lines) == 1:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines) + "\n"


# -- JSON lines -------------------------------------------------------------


def to_jsonl(
    registry: MetricsRegistry, *, funnel: Optional[FunnelLike] = None
) -> str:
    """One JSON object per metric (and per funnel step), one per line."""
    records: List[Dict[str, Any]] = []
    for index, (name, n_in, n_out) in enumerate(_funnel_steps(funnel)):
        records.append(
            {
                "type": "funnel_step",
                "index": index,
                "step": name,
                "pairs_in": n_in,
                "pairs_out": n_out,
            }
        )
    for name, value in registry.counters():
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in registry.gauges():
        records.append({"type": "gauge", "name": name, "value": value})
    for h in registry.histograms():
        records.append(
            {
                "type": "histogram",
                "name": h.name,
                "count": h.count,
                "total": h.total,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
                "mean": h.mean,
                **h.percentiles(),
                "samples": list(h.samples),
            }
        )
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def from_jsonl(
    text: str,
) -> Tuple[MetricsRegistry, List[Tuple[str, int, int]]]:
    """Rebuild a registry (and funnel steps) from :func:`to_jsonl` output."""
    registry = MetricsRegistry()
    steps: List[Tuple[int, str, int, int]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "counter":
            registry.counter(record["name"]).inc(record["value"])
        elif kind == "gauge":
            registry.gauge(record["name"]).set(record["value"])
        elif kind == "histogram":
            histogram = registry.histogram(record["name"])
            histogram.count = record["count"]
            histogram.total = record["total"]
            histogram.min = (
                record["min"] if record["min"] is not None else math.inf
            )
            histogram.max = (
                record["max"] if record["max"] is not None else -math.inf
            )
            histogram.samples = [float(v) for v in record.get("samples", [])]
        elif kind == "funnel_step":
            steps.append(
                (
                    int(record.get("index", len(steps))),
                    record["step"],
                    record["pairs_in"],
                    record["pairs_out"],
                )
            )
    steps.sort()
    return registry, [(name, n_in, n_out) for _i, name, n_in, n_out in steps]


# -- Prometheus text format -------------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def _prom_escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of the registry.

    Emits ``# HELP`` and ``# TYPE`` headers for every metric and escapes
    label values, so the output passes promtool-style parsing; the HELP
    string carries the original dotted metric name, which survives the
    underscore mangling and keeps the exposition greppable.
    """
    lines: List[str] = []
    for name, value in registry.counters():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom}_total "
                     f"{_prom_escape_help(f'repro counter {name}')}")
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {value}")
    for name, value in registry.gauges():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} "
                     f"{_prom_escape_help(f'repro gauge {name}')}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for h in registry.histograms():
        prom = _prom_name(h.name)
        lines.append(f"# HELP {prom} "
                     f"{_prom_escape_help(f'repro histogram {h.name}')}")
        lines.append(f"# TYPE {prom} summary")
        for quantile, value in (
            ("0.5", h.quantile(0.5)),
            ("0.95", h.quantile(0.95)),
            ("0.99", h.quantile(0.99)),
        ):
            lines.append(
                f'{prom}{{quantile="{_prom_escape_label(quantile)}"}} {value}'
            )
        lines.append(f"{prom}_sum {h.total}")
        lines.append(f"{prom}_count {h.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- distributed traces -----------------------------------------------------


def spans_to_jsonl(records: Iterable[SpanRecord]) -> str:
    """One JSON object per span record, one per line."""
    return "".join(
        json.dumps(record.to_dict(), sort_keys=True) + "\n"
        for record in records
    )


def spans_from_jsonl(text: str) -> List[SpanRecord]:
    """Inverse of :func:`spans_to_jsonl` (skips undecodable lines)."""
    records: List[SpanRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if isinstance(payload, dict) and "span_id" in payload:
            records.append(SpanRecord.from_dict(payload))
    return records


def _render_node(
    node: TraceNode, lines: List[str], prefix: str, last: bool, root: bool
) -> None:
    record = node.record
    if root:
        connector, child_prefix = "", ""
    else:
        connector = "└─ " if last else "├─ "
        child_prefix = prefix + ("   " if last else "│  ")
    marker = " (orphaned)" if node.orphaned else ""
    error = " !" if record.error else ""
    label = f"{prefix}{connector}{record.name}{marker}{error}"
    lines.append(
        f"{label:56s} {_fmt_seconds(record.seconds):>10s}  pid {record.pid}"
    )
    for index, child in enumerate(node.children):
        _render_node(
            child, lines, child_prefix if not root else "",
            index == len(node.children) - 1, False,
        )


def render_trace_tree(records: Iterable[SpanRecord]) -> str:
    """ASCII rendering of the stitched trace tree(s).

    One header per trace id, then the span tree with durations and the
    pid each span ran in — worker-side spans show their worker pids
    under the engine's spans.  Orphaned subtrees (parent span lost with
    a crashed worker) are flagged rather than hidden.
    """
    records = list(records)
    if not records:
        return "(no trace recorded)\n"
    by_trace: Dict[str, List[SpanRecord]] = {}
    for record in records:
        by_trace.setdefault(record.trace_id, []).append(record)
    lines: List[str] = []
    for trace_id in sorted(
        by_trace, key=lambda t: min(r.start for r in by_trace[t])
    ):
        group = by_trace[trace_id]
        run_id = next((r.run_id for r in group if r.run_id), None)
        pids = sorted({r.pid for r in group})
        header = f"trace {trace_id[:16]}"
        if run_id:
            header += f"  run {run_id}"
        header += f"  ({len(group)} spans, {len(pids)} process"
        header += "es)" if len(pids) != 1 else ")"
        lines.append(header)
        for root in build_trace_tree(group):
            _render_node(root, lines, "", True, True)
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def to_chrome_trace(records: Iterable[SpanRecord]) -> str:
    """Chrome trace-event JSON (Perfetto / chrome://tracing loadable).

    Each span becomes one complete (``"ph": "X"``) event with
    microsecond timestamps; pid/tid are the recording process, so the
    timeline groups engine and worker spans by process.
    """
    events: List[Dict[str, Any]] = []
    for record in sorted(records, key=lambda r: r.start):
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.seconds * 1e6,
                "pid": record.pid,
                "tid": record.pid,
                "args": {
                    "path": record.path,
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    "trace_id": record.trace_id,
                    "run_id": record.run_id,
                    "error": record.error,
                },
            }
        )
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, sort_keys=True
    )


# -- one-stop writer --------------------------------------------------------


def write_telemetry(
    directory: Union[str, Path],
    registry: MetricsRegistry,
    *,
    funnel: Optional[FunnelLike] = None,
    title: str = "BAYWATCH run report",
) -> Dict[str, Path]:
    """Write report.txt / metrics.jsonl / metrics.prom into ``directory``.

    When span profiling collected hotspots during the run (``profile=``
    spans or ``REPRO_PROFILE``), they are drained into ``profiles.jsonl``
    alongside — ``repro stats --profile`` renders them.  When
    distributed tracing collected span records (a trace context was
    active, see :mod:`repro.obs.tracing`), they are drained into
    ``trace.jsonl`` — ``repro trace`` renders them.  Every file is
    written atomically (tmp + rename, the checkpoint-shard discipline)
    so a kill mid-write never leaves truncated telemetry.  Creates the
    directory if needed; returns the written paths keyed by file name.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    outputs = {
        "report.txt": render_run_report(registry, funnel=funnel, title=title),
        "metrics.jsonl": to_jsonl(registry, funnel=funnel),
        "metrics.prom": to_prometheus(registry),
    }
    profiles = profiling.drain_profiles()
    if profiles:
        outputs[PROFILES_FILE] = profiling.profiles_to_jsonl(profiles)
    spans = drain_spans()
    if spans:
        outputs[TRACE_FILE] = spans_to_jsonl(spans)
    written: Dict[str, Path] = {}
    for name, payload in outputs.items():
        path = target / name
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        written[name] = path
    return written
