"""Exporters: run report (text), JSON lines, Prometheus text format.

Three consumers, three formats:

- :func:`render_run_report` — the analyst-facing summary: the funnel
  table (the paper's Table 3 data-volume-reduction view), a stage
  latency table built from span histograms, and the raw counters and
  gauges (cache hit rates, MapReduce job stats, retry counts).
- :func:`to_jsonl` — one JSON object per line for machine consumption;
  :func:`from_jsonl` round-trips it (this is what ``repro stats``
  reads).
- :func:`to_prometheus` — Prometheus-style text exposition (counters as
  ``_total``, histograms as ``_count``/``_sum`` plus quantile samples)
  for scraping into an existing monitoring stack.

:func:`write_telemetry` writes all three into a directory:
``report.txt``, ``metrics.jsonl``, ``metrics.prom``.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import profiling
from repro.obs.registry import MetricsRegistry

__all__ = [
    "render_run_report",
    "to_jsonl",
    "from_jsonl",
    "to_prometheus",
    "write_telemetry",
    "TELEMETRY_FILES",
    "PROFILES_FILE",
]

#: Files produced by :func:`write_telemetry` in the target directory.
TELEMETRY_FILES = ("report.txt", "metrics.jsonl", "metrics.prom")

#: Span-profile hotspots (written only when profiling collected any).
PROFILES_FILE = "profiles.jsonl"

#: A funnel is a FunnelStats-like object (with ``.steps``) or the raw
#: list of (step_name, pairs_in, pairs_out) triples.
FunnelLike = Union[Any, Sequence[Tuple[str, int, int]]]

_SPAN_SECONDS = re.compile(r"^span\.(?P<path>.+)\.seconds$")


def _funnel_steps(funnel: Optional[FunnelLike]) -> List[Tuple[str, int, int]]:
    if funnel is None:
        return []
    steps = getattr(funnel, "steps", funnel)
    return [(str(name), int(n_in), int(n_out)) for name, n_in, n_out in steps]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:9.3f}s"
    return f"{seconds * 1e3:8.2f}ms"


# -- human-readable run report ---------------------------------------------


def _summary_line(registry: MetricsRegistry) -> Optional[str]:
    """One glanceable health line: cache effectiveness and retries.

    The raw counters are further down the report; the two an operator
    actually scans for — is the ThresholdCache pulling its weight, and
    did any MapReduce tasks need retrying — get surfaced up top.
    """
    counters = dict(registry.counters())
    parts: List[str] = []
    hits = counters.get("detector.threshold_cache.hits", 0)
    misses = counters.get("detector.threshold_cache.misses", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        parts.append(
            f"threshold cache {rate:.1f}% hits ({hits}/{hits + misses})"
        )
    if any(name.startswith("mapreduce.") for name in counters):
        retries = counters.get("mapreduce.task_retries", 0)
        parts.append(f"mapreduce task retries {retries}")
        restarts = counters.get("mapreduce.pool_restarts", 0)
        if restarts:
            parts.append(f"pool restarts {restarts}")
        quarantined = counters.get("mapreduce.tasks_quarantined", 0)
        if quarantined:
            parts.append(f"tasks quarantined {quarantined}")
        resumed = counters.get("mapreduce.shards_resumed", 0)
        if resumed:
            parts.append(f"shards resumed {resumed}")
    if not parts:
        return None
    return "summary: " + "; ".join(parts)


def render_run_report(
    registry: MetricsRegistry,
    *,
    funnel: Optional[FunnelLike] = None,
    title: str = "BAYWATCH run report",
) -> str:
    """The analyst-facing text report (funnel + latency + counters)."""
    lines: List[str] = [f"== {title} =="]

    summary = _summary_line(registry)
    if summary is not None:
        lines.append(summary)

    steps = _funnel_steps(funnel)
    if steps:
        lines.append("")
        lines.append("-- funnel: data volume reduction (Table 3 view) --")
        lines.append(f"{'step':34s} {'in':>10s} {'out':>10s} {'kept':>7s}")
        for name, n_in, n_out in steps:
            kept = f"{100.0 * n_out / n_in:6.2f}%" if n_in else "     -"
            lines.append(f"{name:34s} {n_in:>10d} {n_out:>10d} {kept:>7s}")
        first_in = steps[0][1]
        last_out = steps[-1][2]
        if first_in:
            lines.append(
                f"{'total reduction':34s} {first_in:>10d} {last_out:>10d} "
                f"{100.0 * last_out / first_in:6.2f}%"
            )

    latency_rows = []
    other_histograms = []
    for histogram in registry.histograms():
        match = _SPAN_SECONDS.match(histogram.name)
        if match:
            latency_rows.append((match.group("path"), histogram))
        else:
            other_histograms.append(histogram)

    if latency_rows:
        lines.append("")
        lines.append("-- stage latency (wall clock) --")
        lines.append(
            f"{'span':44s} {'calls':>6s} {'total':>10s} {'mean':>10s} "
            f"{'p50':>10s} {'p95':>10s} {'p99':>10s}"
        )
        for path, h in latency_rows:
            q = h.percentiles()
            lines.append(
                f"{path:44s} {h.count:>6d} {_fmt_seconds(h.total):>10s} "
                f"{_fmt_seconds(h.mean):>10s} {_fmt_seconds(q['p50']):>10s} "
                f"{_fmt_seconds(q['p95']):>10s} {_fmt_seconds(q['p99']):>10s}"
            )

    counters = list(registry.counters())
    if counters:
        lines.append("")
        lines.append("-- counters --")
        for name, value in counters:
            lines.append(f"{name:58s} {value:>12d}")

    gauges = list(registry.gauges())
    if gauges:
        lines.append("")
        lines.append("-- gauges --")
        for name, value in gauges:
            lines.append(f"{name:58s} {value:>12g}")

    if other_histograms:
        lines.append("")
        lines.append("-- distributions --")
        lines.append(
            f"{'histogram':44s} {'count':>6s} {'mean':>10s} {'p50':>10s} "
            f"{'p95':>10s} {'p99':>10s} {'max':>10s}"
        )
        for h in other_histograms:
            q = h.percentiles()
            maximum = h.max if h.count else 0.0
            lines.append(
                f"{h.name:44s} {h.count:>6d} {h.mean:>10.3f} "
                f"{q['p50']:>10.3f} {q['p95']:>10.3f} {q['p99']:>10.3f} "
                f"{maximum:>10.3f}"
            )

    if len(lines) == 1:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines) + "\n"


# -- JSON lines -------------------------------------------------------------


def to_jsonl(
    registry: MetricsRegistry, *, funnel: Optional[FunnelLike] = None
) -> str:
    """One JSON object per metric (and per funnel step), one per line."""
    records: List[Dict[str, Any]] = []
    for index, (name, n_in, n_out) in enumerate(_funnel_steps(funnel)):
        records.append(
            {
                "type": "funnel_step",
                "index": index,
                "step": name,
                "pairs_in": n_in,
                "pairs_out": n_out,
            }
        )
    for name, value in registry.counters():
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in registry.gauges():
        records.append({"type": "gauge", "name": name, "value": value})
    for h in registry.histograms():
        records.append(
            {
                "type": "histogram",
                "name": h.name,
                "count": h.count,
                "total": h.total,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
                "mean": h.mean,
                **h.percentiles(),
                "samples": list(h.samples),
            }
        )
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def from_jsonl(
    text: str,
) -> Tuple[MetricsRegistry, List[Tuple[str, int, int]]]:
    """Rebuild a registry (and funnel steps) from :func:`to_jsonl` output."""
    registry = MetricsRegistry()
    steps: List[Tuple[int, str, int, int]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "counter":
            registry.counter(record["name"]).inc(record["value"])
        elif kind == "gauge":
            registry.gauge(record["name"]).set(record["value"])
        elif kind == "histogram":
            histogram = registry.histogram(record["name"])
            histogram.count = record["count"]
            histogram.total = record["total"]
            histogram.min = (
                record["min"] if record["min"] is not None else math.inf
            )
            histogram.max = (
                record["max"] if record["max"] is not None else -math.inf
            )
            histogram.samples = [float(v) for v in record.get("samples", [])]
        elif kind == "funnel_step":
            steps.append(
                (
                    int(record.get("index", len(steps))),
                    record["step"],
                    record["pairs_in"],
                    record["pairs_out"],
                )
            )
    steps.sort()
    return registry, [(name, n_in, n_out) for _i, name, n_in, n_out in steps]


# -- Prometheus text format -------------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus-style text exposition of the registry."""
    lines: List[str] = []
    for name, value in registry.counters():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {value}")
    for name, value in registry.gauges():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for h in registry.histograms():
        prom = _prom_name(h.name)
        lines.append(f"# TYPE {prom} summary")
        for quantile, value in (
            ("0.5", h.quantile(0.5)),
            ("0.95", h.quantile(0.95)),
            ("0.99", h.quantile(0.99)),
        ):
            lines.append(f'{prom}{{quantile="{quantile}"}} {value}')
        lines.append(f"{prom}_sum {h.total}")
        lines.append(f"{prom}_count {h.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- one-stop writer --------------------------------------------------------


def write_telemetry(
    directory: Union[str, Path],
    registry: MetricsRegistry,
    *,
    funnel: Optional[FunnelLike] = None,
    title: str = "BAYWATCH run report",
) -> Dict[str, Path]:
    """Write report.txt / metrics.jsonl / metrics.prom into ``directory``.

    When span profiling collected hotspots during the run (``profile=``
    spans or ``REPRO_PROFILE``), they are drained into ``profiles.jsonl``
    alongside — ``repro stats --profile`` renders them.  Creates the
    directory if needed; returns the written paths keyed by file name.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    outputs = {
        "report.txt": render_run_report(registry, funnel=funnel, title=title),
        "metrics.jsonl": to_jsonl(registry, funnel=funnel),
        "metrics.prom": to_prometheus(registry),
    }
    profiles = profiling.drain_profiles()
    if profiles:
        outputs[PROFILES_FILE] = profiling.profiles_to_jsonl(profiles)
    written: Dict[str, Path] = {}
    for name, payload in outputs.items():
        path = target / name
        path.write_text(payload, encoding="utf-8")
        written[name] = path
    return written
