"""Whitelist analysis — phase (a) of the pipeline (paper Section III).

Two complementary whitelists remove the bulk of legitimate traffic
before the expensive time-series analysis:

- the **global whitelist** holds well-known benign destinations
  (popular domains, the organization's own infrastructure); matching is
  by registered domain, so ``cdn.google.com`` matches ``google.com``;
- the **local whitelist** is tuned per organization: any destination
  contacted by more than a fraction ``tau_p`` of the internal source
  population is considered organization-wide infrastructure (update
  servers, mail, intranet SaaS).  The paper runs with tau_p = 0.01.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, Optional, Set, Tuple, Union

from repro.lm.corpus import POPULAR_DOMAINS
from repro.lm.domains import registered_domain
from repro.utils.validation import require, require_probability


class GlobalWhitelist:
    """A registered-domain whitelist with subdomain matching."""

    def __init__(self, domains: Optional[Iterable[str]] = None) -> None:
        if domains is None:
            domains = POPULAR_DOMAINS
        self._domains: Set[str] = {registered_domain(d) for d in domains}

    def __contains__(self, destination: str) -> bool:
        return registered_domain(destination) in self._domains

    def __len__(self) -> int:
        return len(self._domains)

    def add(self, destination: str) -> None:
        """Whitelist a destination (stored as its registered domain)."""
        self._domains.add(registered_domain(destination))

    def discard(self, destination: str) -> None:
        """Remove a destination if present."""
        self._domains.discard(registered_domain(destination))

    def save(self, path: Union[str, Path]) -> None:
        """Persist the whitelist as a sorted JSON list."""
        Path(path).write_text(
            json.dumps(sorted(self._domains)), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "GlobalWhitelist":
        """Restore a whitelist saved with :meth:`save`."""
        return cls(json.loads(Path(path).read_text(encoding="utf-8")))


class LocalWhitelist:
    """Popularity-based per-organization whitelist.

    Popularity of a destination is the number of distinct sources that
    contacted it divided by the total source population (paper
    Section VII-C).  Destinations above ``threshold`` are whitelisted.

    ``min_sources`` is a small-population guard: a fraction threshold
    calibrated for a 130 K-host enterprise (the paper's tau_p = 0.01)
    would whitelist single-host destinations in a 30-host deployment, so
    a destination additionally needs at least this many distinct sources
    before popularity can whitelist it.
    """

    def __init__(self, threshold: float = 0.01, *, min_sources: int = 3) -> None:
        require_probability(threshold, "threshold")
        require(min_sources >= 1, "min_sources must be at least 1")
        self.threshold = threshold
        self.min_sources = min_sources
        self._sources_by_destination: Dict[str, Set[str]] = defaultdict(set)
        self._population: Set[str] = set()

    # -- building ------------------------------------------------------------

    def observe(self, source: str, destination: str) -> None:
        """Record that ``source`` contacted ``destination``."""
        self._sources_by_destination[destination].add(source)
        self._population.add(source)

    def observe_pairs(self, pairs: Iterable[Tuple[str, str]]) -> "LocalWhitelist":
        """Bulk :meth:`observe`; returns self for chaining."""
        for source, destination in pairs:
            self.observe(source, destination)
        return self

    # -- queries ---------------------------------------------------------------

    @property
    def population_size(self) -> int:
        """Number of distinct sources observed."""
        return len(self._population)

    def popularity(self, destination: str) -> float:
        """Fraction of the population contacting ``destination``."""
        if not self._population:
            return 0.0
        return len(self._sources_by_destination.get(destination, ())) / len(
            self._population
        )

    def similar_sources(self, destination: str) -> int:
        """Distinct sources sharing the destination (Table II feature)."""
        return len(self._sources_by_destination.get(destination, ()))

    def __contains__(self, destination: str) -> bool:
        require(self._population, "no observations recorded yet")
        return (
            self.similar_sources(destination) >= self.min_sources
            and self.popularity(destination) > self.threshold
        )

    def whitelisted_destinations(self) -> Set[str]:
        """All destinations currently above the popularity threshold."""
        return {
            destination
            for destination in self._sources_by_destination
            if destination in self
        }

    # -- persistence -------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist the observation state as JSON.

        Daily operations accumulate popularity over time: yesterday's
        observations warm-start today's whitelist so that a destination
        popular over the whole fleet is recognized even on a quiet day.
        """
        payload = {
            "threshold": self.threshold,
            "min_sources": self.min_sources,
            "population": sorted(self._population),
            "destinations": {
                destination: sorted(sources)
                for destination, sources in self._sources_by_destination.items()
            },
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LocalWhitelist":
        """Restore a whitelist saved with :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        whitelist = cls(
            payload["threshold"], min_sources=payload["min_sources"]
        )
        whitelist._population = set(payload["population"])
        for destination, sources in payload["destinations"].items():
            whitelist._sources_by_destination[destination] = set(sources)
        return whitelist
