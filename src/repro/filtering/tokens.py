"""URL path token analysis — the first suspicious-indication filter.

Section V-A of the paper (partially elided in the available text)
removes *likely benign* beaconing based on the URL paths a pair
requests.  Our reconstruction uses two signals that characterize
legitimate periodic software:

- **benign tokens**: update checkers, pollers, and license services use
  self-describing path tokens (``update``, ``version.txt``,
  ``heartbeat``, ``feed`` ...) because they are not hiding;
- **path transparency**: benign requests use dictionary-word tokens,
  while C&C gates favour short opaque names (``gate.php``) or long
  random blobs.

The filter only ever marks cases as *likely benign*; it never escalates
suspicion on its own (a benign-looking path must not clear a malicious
domain — final say belongs to ranking and classification).
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence, Set, Tuple

from repro.utils.validation import require_probability

#: Tokens that legitimate periodic services use in request paths.
BENIGN_TOKENS: frozenset = frozenset(
    {
        "update", "updates", "upgrade", "check", "checkin", "version",
        "versions", "latest", "current", "poll", "polling", "heartbeat",
        "keepalive", "ping", "status", "health", "license", "licence",
        "activation", "signature", "signatures", "definitions", "manifest",
        "feed", "feeds", "rss", "atom", "news", "scores", "livescore",
        "weather", "stock", "quote", "ticker", "nowplaying", "playlist",
        "calendar", "sync", "refresh", "notify", "notifications", "mail",
        "inbox", "messages", "presence", "config", "settings", "rules",
        "rulesets", "blocklist", "whitelist", "crl", "ocsp", "time",
    }
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize_url(url: str) -> Tuple[str, ...]:
    """Lowercased alphanumeric tokens of a URL path and query."""
    return tuple(_TOKEN_PATTERN.findall(url.lower()))


class TokenFilter:
    """Classify a pair's URL set as likely benign or not.

    A case is *likely benign* when at least ``min_benign_fraction`` of
    its requests carry a known benign token.  Cases without URL
    side-channel information pass through unfiltered.
    """

    def __init__(
        self,
        *,
        benign_tokens: Iterable[str] = BENIGN_TOKENS,
        min_benign_fraction: float = 0.5,
    ) -> None:
        require_probability(min_benign_fraction, "min_benign_fraction")
        self.benign_tokens: Set[str] = {t.lower() for t in benign_tokens}
        self.min_benign_fraction = min_benign_fraction

    def url_is_benign(self, url: str) -> bool:
        """True when the URL carries at least one benign token."""
        return any(token in self.benign_tokens for token in tokenize_url(url))

    def is_likely_benign(self, urls: Sequence[str]) -> bool:
        """Verdict for a case given its observed request URLs."""
        if not urls:
            return False
        benign = sum(1 for url in urls if self.url_is_benign(url))
        return benign / len(urls) >= self.min_benign_fraction
