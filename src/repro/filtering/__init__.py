"""The 8-step BAYWATCH filtering methodology (paper Sections III & V)."""

from repro.filtering.case import BeaconingCase
from repro.filtering.novelty import NoveltyStore
from repro.filtering.pipeline import (
    BaywatchPipeline,
    FunnelStats,
    PipelineConfig,
    PipelineReport,
)
from repro.filtering.ranking import (
    RankingWeights,
    lm_anomaly,
    percentile_cutoff,
    periodicity_strength,
    rank_cases,
    rank_score,
    rarity,
    regularity,
    strongest_per_destination,
)
from repro.filtering.tokens import BENIGN_TOKENS, TokenFilter, tokenize_url
from repro.filtering.whitelist import GlobalWhitelist, LocalWhitelist

__all__ = [
    "BeaconingCase",
    "NoveltyStore",
    "BaywatchPipeline",
    "FunnelStats",
    "PipelineConfig",
    "PipelineReport",
    "RankingWeights",
    "lm_anomaly",
    "percentile_cutoff",
    "periodicity_strength",
    "rank_cases",
    "rank_score",
    "rarity",
    "regularity",
    "strongest_per_destination",
    "BENIGN_TOKENS",
    "TokenFilter",
    "tokenize_url",
    "GlobalWhitelist",
    "LocalWhitelist",
]
