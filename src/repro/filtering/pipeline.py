"""The BAYWATCH 8-step filtering pipeline, end to end.

The eight filters, grouped into the paper's four phases (Fig. 3):

===== ================================ ==========================
step  filter                           phase
===== ================================ ==========================
1     global whitelist                 whitelist analysis
2     local (popularity) whitelist     whitelist analysis
3     DFT + permutation threshold      time series analysis
4     candidate pruning                time series analysis
5     ACF verification                 time series analysis
6     URL token analysis               suspicious indication
7     novelty analysis                 suspicious indication
8     weighted result ranking          suspicious indication
===== ================================ ==========================

(Steps 3-5 run inside :class:`~repro.core.PeriodicityDetector`; the
pipeline reports them as one "periodicity detection" stage of the
funnel plus the detector's internal rejection reasons.)

The step bodies themselves live in :mod:`repro.stages` — this module's
:class:`BaywatchPipeline` is the *in-process front end* that composes
the shared stage instances; the MapReduce front end
(:class:`~repro.jobs.BaywatchRunner`) composes the same objects, so the
funnel has exactly one implementation.  See ``docs/ARCHITECTURE.md``.

Phase (d) — investigation and verification — lives in
:mod:`repro.analysis`, consuming this pipeline's output.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.detector import DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.filtering.novelty import NoveltyStore
from repro.filtering.ranking import RankingWeights
from repro.filtering.tokens import TokenFilter
from repro.filtering.whitelist import GlobalWhitelist
from repro.lm.domains import DomainScorer, default_scorer
from repro.obs import get_registry, span
from repro.obs.provenance import ProvenancePolicy, VerdictRecord
from repro.sources.proxy import ProxyLogRecord, records_to_summaries
from repro.utils.validation import require, require_probability

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the full pipeline; defaults match the paper's runs."""

    detector: DetectorConfig = field(default_factory=lambda: DetectorConfig(seed=0))
    local_whitelist_threshold: float = 0.01
    ranking_percentile: float = 0.9
    ranking_weights: RankingWeights = field(default_factory=RankingWeights)
    time_scale: float = 1.0
    min_events: int = 4
    use_threshold_cache: bool = True
    aggregate_entities: bool = False
    #: Pairs per batched-detection chunk; 0 keeps the serial per-pair
    #: path.  Any positive size produces identical reports (the batched
    #: kernels are bit-for-bit equivalent) — the knob only trades peak
    #: memory for FFT/ACF dispatch amortization.
    detection_batch_size: int = 0
    #: Reuse sliding-DFT spectral state across pipeline runs: detection
    #: screens each pair on incrementally maintained periodograms and
    #: only screen survivors pay for the full batched detector.  The
    #: win applies to rolling windows re-run per tick (a 30-day window
    #: stepped daily); one-shot runs simply pay a state build.  Requires
    #: ``use_threshold_cache`` and a binary-signal detector — otherwise
    #: detection silently degrades to the plain batched path.  Part of
    #: ``repr`` (and the sharded run fingerprint): warm spectral state
    #: must never leak into a run configured without it.
    incremental_detection: bool = False
    #: Directory the incremental executor persists its warm spectral
    #: states in (as ``incremental-state.bin``, next to the checkpoint
    #: files) — typically a run's checkpoint directory.  None keeps the
    #: states purely in memory.  The persisted cache carries a
    #: detector-configuration fingerprint, so a stale or incompatible
    #: file is discarded on load, never trusted.  Excluded from
    #: ``repr``: where warmth lives on disk does not change reports.
    incremental_state_dir: Optional[str] = field(default=None, repr=False)
    #: Hand detection workers their pair payloads through a
    #: :class:`~repro.mapreduce.shm.SummaryArena` instead of pickled
    #: summaries.  Only the MapReduce front end consults this (the
    #: in-process pipeline has no workers); reports are bit-identical
    #: either way — the knob trades per-task serialization for one
    #: shared segment per detection batch.
    use_shared_memory: bool = False
    #: Decision-provenance sampling policy.  None (the default) keeps
    #: every per-pair verdict path disabled at zero overhead; a
    #: :class:`~repro.obs.provenance.ProvenancePolicy` records full
    #: chains for survivors and near-misses plus a deterministic sample
    #: of early drops.  Part of ``repr`` and therefore of the sharded
    #: run fingerprint: a checkpoint cannot silently resume with a
    #: different provenance setting.
    provenance: Optional[ProvenancePolicy] = None
    #: Execution backend for the MapReduce front end: one of
    #: ``"serial"``, ``"threads"``, ``"processes"``, ``"shard-queue"``,
    #: or None to keep the engine's own default.  Deliberately excluded
    #: from ``repr`` — and therefore from the sharded run fingerprint —
    #: because every backend produces bit-identical reports: a run
    #: started under ``processes`` may legitimately resume under
    #: ``shard-queue``.  Only the MapReduce runner consults this (the
    #: in-process pipeline has no workers).
    executor: Optional[str] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        require_probability(
            self.local_whitelist_threshold, "local_whitelist_threshold"
        )
        require_probability(self.ranking_percentile, "ranking_percentile")
        require(self.min_events >= 2, "min_events must be at least 2")
        require(
            self.detection_batch_size >= 0,
            "detection_batch_size must be non-negative (0 = serial)",
        )
        # Literal tuple rather than an import: the filtering layer must
        # not depend on the mapreduce layer (repro.mapreduce.executors
        # re-validates via make_executor when the engine is built).
        require(
            self.executor in (None, "serial", "threads", "processes",
                              "shard-queue"),
            f"unknown executor {self.executor!r}; known: serial, threads, "
            "processes, shard-queue",
        )


@dataclass
class FunnelStats:
    """How many communication pairs each step let through."""

    steps: List[Tuple[str, int, int]] = field(default_factory=list)

    def record(self, name: str, pairs_in: int, pairs_out: int) -> None:
        """Append one step's in/out counts."""
        self.steps.append((name, pairs_in, pairs_out))
        logger.debug("filter %s: %d -> %d pairs", name.strip(), pairs_in,
                     pairs_out)

    def as_text(self) -> str:
        """Human-readable funnel table."""
        lines = [f"{'step':34s} {'in':>8s} {'out':>8s}"]
        for name, pairs_in, pairs_out in self.steps:
            lines.append(f"{name:34s} {pairs_in:>8d} {pairs_out:>8d}")
        return "\n".join(lines)

    def validate(self, *, strict: bool = False) -> List[str]:
        """Check the funnel invariant: counts never increase.

        Every step is a pure filter, so within a step ``out <= in`` and
        across consecutive steps the next input cannot exceed the
        previous output.  A violation means a wiring bug (a stage fed
        the wrong survivor list).  Returns the violation messages;
        ``strict=True`` raises instead, otherwise each is logged at
        WARNING.
        """
        problems: List[str] = []
        previous_out: Optional[int] = None
        for name, pairs_in, pairs_out in self.steps:
            label = name.strip()
            if pairs_out > pairs_in:
                problems.append(
                    f"step {label!r} emitted more pairs than it received "
                    f"({pairs_in} -> {pairs_out})"
                )
            if previous_out is not None and pairs_in > previous_out:
                problems.append(
                    f"step {label!r} received {pairs_in} pairs but the "
                    f"previous step only emitted {previous_out}"
                )
            previous_out = pairs_out
        if problems and strict:
            raise ValueError("funnel is not monotonic: " + "; ".join(problems))
        for problem in problems:
            logger.warning("funnel inconsistency: %s", problem)
        return problems


@dataclass
class PipelineReport:
    """Everything a pipeline run produced.

    ``quarantined`` lists the poison-pill inputs a fault-tolerant
    sharded run dropped after exhausting every retry
    (:class:`~repro.mapreduce.QuarantinedTask` records); it is empty
    for in-process runs and for batches without failures.
    """

    ranked_cases: List[BeaconingCase]
    detected_cases: List[BeaconingCase]
    funnel: FunnelStats
    population_size: int
    quarantined: List[Any] = field(default_factory=list)
    #: Per-pair verdict records when the run's config enabled decision
    #: provenance (canonically sorted; see :mod:`repro.obs.provenance`).
    provenance: List[VerdictRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.funnel.validate()

    @property
    def reported_destinations(self) -> List[str]:
        """Distinct destinations among the ranked cases, best first."""
        seen = []
        for case in self.ranked_cases:
            if case.destination not in seen:
                seen.append(case.destination)
        return seen


class BaywatchPipeline:
    """Run the 8-step methodology over proxy-log records or summaries.

    The pipeline is reusable across daily runs: the novelty store
    accumulates reported destinations, so a destination reported
    yesterday is suppressed (but logged) today.  It composes the shared
    :mod:`repro.stages` objects with an in-process detection executor;
    record ingestion streams through
    :func:`repro.sources.proxy.records_to_summaries`, so ``records``
    may be a lazy iterator of any size.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        global_whitelist: Optional[GlobalWhitelist] = None,
        novelty: Optional[NoveltyStore] = None,
        token_filter: Optional[TokenFilter] = None,
        scorer: Optional[DomainScorer] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.global_whitelist = (
            global_whitelist if global_whitelist is not None else GlobalWhitelist()
        )
        self.novelty = novelty if novelty is not None else NoveltyStore()
        self.token_filter = token_filter if token_filter is not None else TokenFilter()
        self._scorer = scorer
        self._threshold_cache = (
            ThresholdCache() if self.config.use_threshold_cache else None
        )
        self.detector = PeriodicityDetector(
            self.config.detector, threshold_cache=self._threshold_cache
        )
        # The stages module imports leaf filtering modules, so it is
        # imported lazily here to keep the package graph acyclic.
        from repro.stages import (
            BatchedDetection,
            IncrementalDetection,
            InProcessDetection,
            PeriodicityDetectionStage,
            default_stages,
        )

        if self.config.incremental_detection:
            state_path = None
            if self.config.incremental_state_dir is not None:
                from repro.jobs.checkpoint import INCREMENTAL_STATE_FILE

                state_path = (
                    Path(self.config.incremental_state_dir)
                    / INCREMENTAL_STATE_FILE
                )
            executor = IncrementalDetection(
                self.detector,
                batch_size=max(1, self.config.detection_batch_size or 256),
                state_path=state_path,
            )
        elif self.config.detection_batch_size > 0:
            executor = BatchedDetection(
                self.detector, batch_size=self.config.detection_batch_size
            )
        else:
            executor = InProcessDetection(self.detector)
        self._stages = default_stages(PeriodicityDetectionStage(executor))

    @property
    def scorer(self) -> DomainScorer:
        """The domain LM scorer (built lazily: training takes ~1 s)."""
        if self._scorer is None:
            self._scorer = default_scorer()
        return self._scorer

    # -- public API --------------------------------------------------------

    def run_records(self, records: Iterable[ProxyLogRecord]) -> PipelineReport:
        """Run the pipeline on raw proxy-log records (streamed)."""
        with span("records_to_summaries"):
            summaries = records_to_summaries(
                records,
                time_scale=self.config.time_scale,
                aggregate_entities=self.config.aggregate_entities,
            )
        return self.run_summaries(summaries)

    def run_chunks(self, chunks: Iterable[Any]) -> PipelineReport:
        """Run the pipeline on columnar record chunks.

        The zero-copy counterpart of :meth:`run_records`:
        :class:`~repro.sources.columnar.RecordChunk` batches (e.g. from
        :func:`~repro.sources.columnar.read_log_chunks`) fold into
        summaries through the vectorized accumulator, producing a
        report bit-identical to the per-record path over the same
        events.
        """
        from repro.sources.columnar import summaries_from_chunks

        with span("chunks_to_summaries"):
            summaries = summaries_from_chunks(
                chunks,
                time_scale=self.config.time_scale,
                aggregate_entities=self.config.aggregate_entities,
            )
        return self.run_summaries(summaries)

    def run_summaries(
        self, summaries: Sequence[ActivitySummary]
    ) -> PipelineReport:
        """Run the pipeline on prebuilt activity summaries."""
        with span("pipeline"):
            return self._run_summaries(summaries)

    def _run_summaries(
        self, summaries: Sequence[ActivitySummary]
    ) -> PipelineReport:
        from repro.stages import (
            PopularityIndex,
            StageContext,
            build_report,
            run_stages,
        )

        registry = get_registry()
        registry.counter("pipeline.runs").inc()
        recorder = None
        if self.config.provenance is not None:
            from repro.obs.provenance import ProvenanceRecorder

            recorder = ProvenanceRecorder(self.config.provenance)
        context = StageContext(
            config=self.config,
            global_whitelist=self.global_whitelist,
            novelty=self.novelty,
            token_filter=self.token_filter,
            threshold_cache=self._threshold_cache,
            scorer_factory=lambda: self.scorer,
            provenance=recorder,
        )
        with span("local_whitelist_build"):
            context.popularity = PopularityIndex.from_summaries(summaries)
        registry.gauge("pipeline.population_size").set(
            context.popularity.population
        )

        ranked = run_stages(context, self._stages, summaries)

        logger.info(
            "pipeline run: %d pairs in, %d periodic, %d reported "
            "(population %d)",
            len(summaries), len(context.detected), len(ranked),
            context.popularity.population,
        )
        return build_report(context, ranked)
