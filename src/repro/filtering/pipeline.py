"""The BAYWATCH 8-step filtering pipeline, end to end.

The eight filters, grouped into the paper's four phases (Fig. 3):

===== ================================ ==========================
step  filter                           phase
===== ================================ ==========================
1     global whitelist                 whitelist analysis
2     local (popularity) whitelist     whitelist analysis
3     DFT + permutation threshold      time series analysis
4     candidate pruning                time series analysis
5     ACF verification                 time series analysis
6     URL token analysis               suspicious indication
7     novelty analysis                 suspicious indication
8     weighted result ranking          suspicious indication
===== ================================ ==========================

(Steps 3-5 run inside :class:`~repro.core.PeriodicityDetector`; the
pipeline reports them as one "periodicity detection" stage of the
funnel plus the detector's internal rejection reasons.)

Phase (d) — investigation and verification — lives in
:mod:`repro.analysis`, consuming this pipeline's output.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.detector import DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.filtering.novelty import NoveltyStore
from repro.obs import get_registry, span
from repro.filtering.ranking import (
    RankingWeights,
    rank_cases,
    rank_score,
    strongest_per_destination,
)
from repro.filtering.tokens import TokenFilter
from repro.filtering.whitelist import GlobalWhitelist, LocalWhitelist
from repro.lm.domains import DomainScorer, default_scorer
from repro.synthetic.logs import ProxyLogRecord, records_to_summaries
from repro.utils.validation import require, require_probability

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the full pipeline; defaults match the paper's runs."""

    detector: DetectorConfig = field(default_factory=lambda: DetectorConfig(seed=0))
    local_whitelist_threshold: float = 0.01
    ranking_percentile: float = 0.9
    ranking_weights: RankingWeights = field(default_factory=RankingWeights)
    time_scale: float = 1.0
    min_events: int = 4
    use_threshold_cache: bool = True
    aggregate_entities: bool = False

    def __post_init__(self) -> None:
        require_probability(
            self.local_whitelist_threshold, "local_whitelist_threshold"
        )
        require_probability(self.ranking_percentile, "ranking_percentile")
        require(self.min_events >= 2, "min_events must be at least 2")


@dataclass
class FunnelStats:
    """How many communication pairs each step let through."""

    steps: List[Tuple[str, int, int]] = field(default_factory=list)

    def record(self, name: str, pairs_in: int, pairs_out: int) -> None:
        """Append one step's in/out counts."""
        self.steps.append((name, pairs_in, pairs_out))
        logger.debug("filter %s: %d -> %d pairs", name.strip(), pairs_in,
                     pairs_out)

    def as_text(self) -> str:
        """Human-readable funnel table."""
        lines = [f"{'step':34s} {'in':>8s} {'out':>8s}"]
        for name, pairs_in, pairs_out in self.steps:
            lines.append(f"{name:34s} {pairs_in:>8d} {pairs_out:>8d}")
        return "\n".join(lines)

    def validate(self, *, strict: bool = False) -> List[str]:
        """Check the funnel invariant: counts never increase.

        Every step is a pure filter, so within a step ``out <= in`` and
        across consecutive steps the next input cannot exceed the
        previous output.  A violation means a wiring bug (a stage fed
        the wrong survivor list).  Returns the violation messages;
        ``strict=True`` raises instead, otherwise each is logged at
        WARNING.
        """
        problems: List[str] = []
        previous_out: Optional[int] = None
        for name, pairs_in, pairs_out in self.steps:
            label = name.strip()
            if pairs_out > pairs_in:
                problems.append(
                    f"step {label!r} emitted more pairs than it received "
                    f"({pairs_in} -> {pairs_out})"
                )
            if previous_out is not None and pairs_in > previous_out:
                problems.append(
                    f"step {label!r} received {pairs_in} pairs but the "
                    f"previous step only emitted {previous_out}"
                )
            previous_out = pairs_out
        if problems and strict:
            raise ValueError("funnel is not monotonic: " + "; ".join(problems))
        for problem in problems:
            logger.warning("funnel inconsistency: %s", problem)
        return problems


@dataclass
class PipelineReport:
    """Everything a pipeline run produced.

    ``quarantined`` lists the poison-pill inputs a fault-tolerant
    sharded run dropped after exhausting every retry
    (:class:`~repro.mapreduce.QuarantinedTask` records); it is empty
    for in-process runs and for batches without failures.
    """

    ranked_cases: List[BeaconingCase]
    detected_cases: List[BeaconingCase]
    funnel: FunnelStats
    population_size: int
    quarantined: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.funnel.validate()

    @property
    def reported_destinations(self) -> List[str]:
        """Distinct destinations among the ranked cases, best first."""
        seen = []
        for case in self.ranked_cases:
            if case.destination not in seen:
                seen.append(case.destination)
        return seen


class BaywatchPipeline:
    """Run the 8-step methodology over proxy-log records or summaries.

    The pipeline is reusable across daily runs: the novelty store
    accumulates reported destinations, so a destination reported
    yesterday is suppressed (but logged) today.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        global_whitelist: Optional[GlobalWhitelist] = None,
        novelty: Optional[NoveltyStore] = None,
        token_filter: Optional[TokenFilter] = None,
        scorer: Optional[DomainScorer] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.global_whitelist = (
            global_whitelist if global_whitelist is not None else GlobalWhitelist()
        )
        self.novelty = novelty if novelty is not None else NoveltyStore()
        self.token_filter = token_filter if token_filter is not None else TokenFilter()
        self._scorer = scorer
        cache = ThresholdCache() if self.config.use_threshold_cache else None
        self.detector = PeriodicityDetector(
            self.config.detector, threshold_cache=cache
        )

    @property
    def scorer(self) -> DomainScorer:
        """The domain LM scorer (built lazily: training takes ~1 s)."""
        if self._scorer is None:
            self._scorer = default_scorer()
        return self._scorer

    # -- public API --------------------------------------------------------

    def run_records(self, records: Iterable[ProxyLogRecord]) -> PipelineReport:
        """Run the pipeline on raw proxy-log records."""
        with span("records_to_summaries"):
            summaries = records_to_summaries(
                records,
                time_scale=self.config.time_scale,
                aggregate_entities=self.config.aggregate_entities,
            )
        return self.run_summaries(summaries)

    def run_summaries(
        self, summaries: Sequence[ActivitySummary]
    ) -> PipelineReport:
        """Run the pipeline on prebuilt activity summaries."""
        with span("pipeline"):
            return self._run_summaries(summaries)

    def _run_summaries(
        self, summaries: Sequence[ActivitySummary]
    ) -> PipelineReport:
        registry = get_registry()
        registry.counter("pipeline.runs").inc()
        funnel = FunnelStats()
        with span("local_whitelist_build"):
            local = LocalWhitelist(self.config.local_whitelist_threshold)
            for summary in summaries:
                local.observe(summary.source, summary.destination)
        population = local.population_size
        registry.gauge("pipeline.population_size").set(population)

        # Step 1: global whitelist.
        n_in = len(summaries)
        with span("step1_global_whitelist"):
            survivors = [
                s for s in summaries if s.destination not in self.global_whitelist
            ]
        funnel.record("1 global whitelist", n_in, len(survivors))

        # Step 2: local (popularity) whitelist.
        n_in = len(survivors)
        with span("step2_local_whitelist"):
            survivors = [s for s in survivors if s.destination not in local]
        funnel.record("2 local whitelist", n_in, len(survivors))

        # Pre-filter: pairs without enough events cannot beacon.
        n_in = len(survivors)
        survivors = [
            s for s in survivors if s.event_count >= self.config.min_events
        ]
        funnel.record("  (min events)", n_in, len(survivors))

        # Steps 3-5: periodicity detection (DFT, pruning, verification).
        n_in = len(survivors)
        detected: List[BeaconingCase] = []
        with span("step3_5_periodicity_detection"):
            for summary in survivors:
                result = self.detector.detect_summary(summary)
                if result.periodic:
                    detected.append(
                        BeaconingCase(
                            summary=summary,
                            detection=result,
                            popularity=local.popularity(summary.destination),
                            similar_sources=local.similar_sources(summary.destination),
                            lm_score=self.scorer.normalized_score(summary.destination),
                        )
                    )
        funnel.record("3-5 periodicity detection", n_in, len(detected))

        # Step 6: URL token analysis.
        n_in = len(detected)
        with span("step6_token_filter"):
            cases = [
                case
                for case in detected
                if not self.token_filter.is_likely_benign(case.summary.urls)
            ]
        funnel.record("6 token filter", n_in, len(cases))

        # Step 7: novelty analysis — suppress destinations reported in
        # previous runs, consolidate same-destination cases within this
        # run (keeping the strongest), and record the survivors.
        n_in = len(cases)
        with span("step7_novelty_filter"):
            scored = [
                case.with_rank_score(rank_score(case, self.config.ranking_weights))
                for case in cases
            ]
            fresh = [
                case
                for case in scored
                if self.novelty.is_novel(case.source, case.destination)
            ]
            consolidated = strongest_per_destination(fresh)
            for case in consolidated:
                self.novelty.record(case.source, case.destination)
        funnel.record("7 novelty filter", n_in, len(consolidated))

        # Step 8: percentile threshold over the score distribution.
        n_in = len(consolidated)
        with span("step8_weighted_ranking"):
            ranked = rank_cases(
                consolidated,
                weights=self.config.ranking_weights,
                percentile=self.config.ranking_percentile,
            )
        funnel.record("8 weighted ranking", n_in, len(ranked))

        logger.info(
            "pipeline run: %d pairs in, %d periodic, %d reported "
            "(population %d)",
            len(summaries), len(detected), len(ranked), population,
        )
        return PipelineReport(
            ranked_cases=ranked,
            detected_cases=detected,
            funnel=funnel,
            population_size=population,
        )
