"""Novelty analysis — change detection over reported cases (Section V-B).

The analyst should not re-investigate what was already reported: the
novelty filter suppresses source/destination pairs whose destination was
already reported (by any source, in any previous run).  Suppressed cases
are still *logged* — they remain available for review — but do not flow
into ranking.  The store can persist across daily runs as a JSON file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Set, Tuple, Union


class NoveltyStore:
    """Remembers previously reported destinations and pairs."""

    def __init__(self) -> None:
        self._destinations: Set[str] = set()
        self._pairs: Set[Tuple[str, str]] = set()
        self._suppressed_log: list = []

    # -- queries ---------------------------------------------------------------

    def is_novel(self, source: str, destination: str) -> bool:
        """True when neither the destination nor the pair was reported.

        Matches the paper's rule: forward a case only when the
        destination has not been reported before, or the source has not
        been reported beaconing to that destination.
        """
        return destination not in self._destinations

    def check_and_record(self, source: str, destination: str) -> bool:
        """Atomically test novelty and record the case either way.

        Returns the novelty verdict; non-novel cases are appended to the
        suppressed log for later analyst review.
        """
        novel = self.is_novel(source, destination)
        if novel:
            self.record(source, destination)
        else:
            self._suppressed_log.append((source, destination))
        return novel

    def record(self, source: str, destination: str) -> None:
        """Mark a pair (and its destination) as reported."""
        self._destinations.add(destination)
        self._pairs.add((source, destination))

    @property
    def reported_destinations(self) -> Set[str]:
        """Destinations reported so far."""
        return set(self._destinations)

    @property
    def suppressed(self) -> list:
        """Cases suppressed as duplicates (kept for analyst review)."""
        return list(self._suppressed_log)

    def __len__(self) -> int:
        return len(self._pairs)

    # -- persistence -------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist the store as JSON (for the next daily run)."""
        payload = {
            "destinations": sorted(self._destinations),
            "pairs": sorted(list(pair) for pair in self._pairs),
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "NoveltyStore":
        """Restore a store saved with :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        store = cls()
        store._destinations = set(payload["destinations"])
        store._pairs = {tuple(pair) for pair in payload["pairs"]}
        return store
