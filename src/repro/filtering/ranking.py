"""Weighted result ranking — paper Section V-D.

Each surviving case receives a single score combining the indicators
the earlier filters produced:

- **periodicity strength** — ACF score, spectral power relative to the
  permutation threshold, and low relative interval deviation,
- **language-model anomaly** — very low domain scores get extra weight
  (the paper "assigns a higher weight to the language model score for
  the domains with very low probabilities"),
- **destination rarity** — the fewer sources contact a destination, the
  more targeted (and suspicious) the channel,
- **long-range regularity** — series observed over many cycles score
  higher than short bursts.

Only cases above the n-th percentile of the score distribution are
reported (paper: 90th percentile for the daily runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.filtering.case import BeaconingCase
from repro.utils.validation import require, require_probability


@dataclass(frozen=True)
class RankingWeights:
    """Relative weight of each indicator in the final score.

    The defaults follow the paper's stated preferences: periodicity
    strength and the language model dominate, with an extra bonus for
    extremely DGA-like names.
    """

    periodicity: float = 1.0
    lm: float = 1.0
    lm_extreme_bonus: float = 0.5
    rarity: float = 0.5
    regularity: float = 0.5
    lm_extreme_threshold: float = -2.2

    def __post_init__(self) -> None:
        for name in ("periodicity", "lm", "lm_extreme_bonus", "rarity", "regularity"):
            require(getattr(self, name) >= 0, f"{name} must be non-negative")


def periodicity_strength(case: BeaconingCase) -> float:
    """Periodicity indicator in [0, 1].

    Combines the ACF score of the dominant candidate with the relative
    standard deviation of the intervals around it (low deviation =
    strong clockwork behaviour).
    """
    dominant = case.detection.dominant
    if dominant is None:
        return 0.0
    acf_part = min(max(dominant.acf_score, 0.0), 1.0)
    intervals = case.summary.nonzero_intervals()
    cv_part = 0.0
    if intervals.size >= 2 and intervals.mean() > 0:
        cv = float(intervals.std() / intervals.mean())
        cv_part = 1.0 / (1.0 + cv)
    return 0.6 * acf_part + 0.4 * cv_part


def lm_anomaly(case: BeaconingCase, weights: RankingWeights) -> float:
    """Language-model indicator: 0 for natural names, grows as the
    normalized score drops, with a bonus below the extreme threshold."""
    score = case.lm_score
    base = max(0.0, -score - 1.0)  # natural names sit around -1.0
    base = min(base / 2.0, 1.0)
    if score < weights.lm_extreme_threshold:
        base += weights.lm_extreme_bonus
    return base


def rarity(case: BeaconingCase) -> float:
    """Destination-rarity indicator: 1 for single-client destinations,
    decaying with popularity."""
    return 1.0 / (1.0 + 50.0 * max(case.popularity, 0.0))


def regularity(case: BeaconingCase) -> float:
    """Long-range regularity: saturating in the number of observed
    cycles at the dominant period."""
    period = case.dominant_period
    if not period or period <= 0:
        return 0.0
    cycles = case.detection.duration / period
    return 1.0 - math.exp(-cycles / 20.0)


def rank_score(case: BeaconingCase, weights: RankingWeights = RankingWeights()) -> float:
    """The combined weighted score of one case."""
    return (
        weights.periodicity * periodicity_strength(case)
        + weights.lm * lm_anomaly(case, weights)
        + weights.rarity * rarity(case)
        + weights.regularity * regularity(case)
    )


def strongest_per_destination(
    cases: Sequence[BeaconingCase],
) -> List[BeaconingCase]:
    """Keep one case per destination — the strongest by rank score.

    The novelty filter consolidates same-destination cases (paper
    Section V-B): within one run, two infected hosts beaconing to the
    same C&C produce one reported case, carrying the strongest evidence.
    Ties break deterministically by event count, then source.
    """
    best: dict = {}
    for case in cases:
        incumbent = best.get(case.destination)
        if incumbent is None or (
            case.rank_score,
            case.summary.event_count,
            case.source,
        ) > (
            incumbent.rank_score,
            incumbent.summary.event_count,
            incumbent.source,
        ):
            best[case.destination] = case
    return list(best.values())


def percentile_cutoff(scores: Sequence[float], percentile: float) -> float:
    """The reporting threshold over a score distribution.

    Cases at or above the ``percentile`` of the distribution are
    reported (paper Section V-D).  With fewer than two scores the
    threshold is vacuous (``-inf``).  Shared by the in-process
    :func:`rank_cases` and the ranking MapReduce job's reduce task.

    NaN scores are rejected outright: ``np.quantile`` propagates a
    single NaN into a NaN threshold, and since every ``score >= nan``
    comparison is False the report would come back silently empty — a
    detection run that looks clean instead of failing loudly.
    """
    values = np.asarray(list(scores), dtype=float)
    n_nan = int(np.count_nonzero(np.isnan(values)))
    if n_nan:
        raise ValueError(
            f"{n_nan} of {values.size} rank scores are NaN; a NaN score "
            f"would poison the percentile threshold and silently empty "
            f"the report"
        )
    if values.size > 1:
        return float(np.quantile(values, percentile))
    return float(-np.inf)


def rank_cases(
    cases: Sequence[BeaconingCase],
    *,
    weights: RankingWeights = RankingWeights(),
    percentile: float = 0.9,
) -> List[BeaconingCase]:
    """Score, threshold, and sort cases (best first).

    Only cases at or above the ``percentile`` of the score distribution
    are returned (paper Section V-D).  With fewer than 2 cases the
    threshold is vacuous.
    """
    require_probability(percentile, "percentile")
    scored = [case.with_rank_score(rank_score(case, weights)) for case in cases]
    if not scored:
        return []
    cutoff = percentile_cutoff([case.rank_score for case in scored], percentile)
    kept = [case for case in scored if case.rank_score >= cutoff]
    kept.sort(key=lambda case: case.rank_score, reverse=True)
    return kept
