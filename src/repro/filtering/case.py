"""The beaconing case record flowing through the pipeline tail.

A :class:`BeaconingCase` bundles everything later stages need about one
suspicious communication pair: the activity summary, the detection
result, the popularity/similar-source statistics, the language-model
score of the destination, and the final weighted rank score.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.detector import DetectionResult
from repro.core.timeseries import ActivitySummary


@dataclass(frozen=True)
class BeaconingCase:
    """One suspicious pair after time-series analysis."""

    summary: ActivitySummary
    detection: DetectionResult
    popularity: float = 0.0
    similar_sources: int = 1
    lm_score: float = 0.0
    rank_score: float = 0.0

    @property
    def pair(self) -> Tuple[str, str]:
        """The (source, destination) communication pair."""
        return self.summary.pair

    @property
    def source(self) -> str:
        """Source endpoint (MAC in the paper's configuration)."""
        return self.summary.source

    @property
    def destination(self) -> str:
        """Destination endpoint (domain)."""
        return self.summary.destination

    @property
    def dominant_period(self) -> Optional[float]:
        """Strongest verified period in seconds."""
        return self.detection.dominant_period

    @property
    def smallest_period(self) -> Optional[float]:
        """Smallest verified period — what the paper's tables report."""
        periods = self.detection.periods()
        return min(periods) if periods else None

    @property
    def periods(self) -> Tuple[float, ...]:
        """All verified periods, strongest first."""
        return tuple(self.detection.periods())

    def with_rank_score(self, score: float) -> "BeaconingCase":
        """Copy of the case with the ranking score filled in."""
        return replace(self, rank_score=float(score))
