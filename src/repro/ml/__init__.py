"""From-scratch machine-learning substrate (paper Section VI).

CART decision trees, a 200-tree random forest with uncertainty-ordered
review, the Table II feature extraction (interval symbolization, 3-gram
histograms, entropy, compressibility), and evaluation metrics.
"""

from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.crossval import (
    CrossValidationResult,
    cross_validate,
    stratified_folds,
)
from repro.ml.metrics import (
    ConfusionMatrix,
    confusion_matrix,
    false_negatives_vs_reviewed,
    precision_at_k,
)
from repro.ml.features import (
    FEATURE_NAMES,
    SYMBOL_OTHER,
    SYMBOL_PERIODIC,
    SYMBOL_ZERO,
    TRIGRAMS,
    CaseFeatures,
    extract_case_features,
    symbolize_intervals,
    trigram_histogram,
)

__all__ = [
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "CrossValidationResult",
    "cross_validate",
    "stratified_folds",
    "ConfusionMatrix",
    "confusion_matrix",
    "false_negatives_vs_reviewed",
    "precision_at_k",
    "FEATURE_NAMES",
    "SYMBOL_OTHER",
    "SYMBOL_PERIODIC",
    "SYMBOL_ZERO",
    "TRIGRAMS",
    "CaseFeatures",
    "extract_case_features",
    "symbolize_intervals",
    "trigram_histogram",
]
