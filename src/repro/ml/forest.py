"""Random forest classifier (paper Section VI-B).

BAYWATCH classifies triaged beaconing cases with a 200-tree random
forest: bootstrap-resampled CART trees with per-split feature
subsampling, aggregated by majority vote.  ``predict_proba`` averages
the per-tree leaf distributions, and :meth:`uncertainty` exposes the
margin-based ordering used to prioritize manual review (paper Fig. 11:
examining cases in uncertainty order removes false negatives fastest).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.tree import DecisionTreeClassifier
from repro.utils.validation import require


class RandomForestClassifier:
    """An ensemble of bootstrap CART trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 200,
        *,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: object = "sqrt",
        seed: Optional[int] = None,
    ) -> None:
        require(n_estimators >= 1, "n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: List[DecisionTreeClassifier] = []
        self.n_classes_: int = 0
        self.n_features_: int = 0

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of (X, y)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        require(X.ndim == 2, "X must be 2-dimensional")
        require(X.shape[0] == y.size, "X and y must have matching lengths")
        require(y.size > 0, "training set must not be empty")
        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Average per-tree class distributions, shape (n, n_classes)."""
        require(self.trees_, "forest must be fitted before predicting")
        X = np.asarray(X, dtype=float)
        total = np.zeros((X.shape[0], self.n_classes_))
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            if proba.shape[1] < self.n_classes_:
                padded = np.zeros((X.shape[0], self.n_classes_))
                padded[:, : proba.shape[1]] = proba
                proba = padded
            total += proba
        return total / len(self.trees_)

    def predict(self, X) -> np.ndarray:
        """Majority-vote class per sample (mode of the tree outputs)."""
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean normalized Gini importance over the ensemble."""
        require(self.trees_, "forest must be fitted first")
        total = np.zeros(self.n_features_)
        for tree in self.trees_:
            if tree.feature_importances_ is not None:
                total += tree.feature_importances_
        out_sum = total.sum()
        return total / out_sum if out_sum > 0 else total

    def top_features(self, names, k: int = 5):
        """The ``k`` most important (name, importance) pairs."""
        importances = self.feature_importances_
        require(len(names) == importances.size,
                "names must align with the feature count")
        order = np.argsort(importances)[::-1][:k]
        return [(names[i], float(importances[i])) for i in order]

    def uncertainty(self, X) -> np.ndarray:
        """Per-sample uncertainty in [0, 1]; 1 = fully undecided.

        Defined as ``1 - margin`` where margin is the gap between the
        top class probability and a uniform split.  Reviewing candidate
        cases in decreasing uncertainty order is the paper's strategy
        for burning down false negatives quickly (Fig. 11).
        """
        proba = self.predict_proba(X)
        top = proba.max(axis=1)
        uniform = 1.0 / self.n_classes_
        return 1.0 - (top - uniform) / (1.0 - uniform)
