"""Feature extraction for case classification (paper Table II).

Each triaged case — a (source, destination, interval-series) tuple plus
its detection output — is turned into a fixed-length numeric vector:

- series length, dominant period(s), spectral power, similar-source
  count (Table II rows 1-4),
- the symbolized interval series (``x`` = interval matches a dominant
  period, ``y`` = zero interval, ``z`` = otherwise) summarized by its
  3-gram histogram, Shannon entropy, and gzip compressibility
  (Table II rows 5-7),
- plus the language-model score and ACF strength that the ranking
  filter already computed (the paper notes the filters "generate a rich
  set of features" for exactly this reuse).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.stats import gzip_compression_ratio, shannon_entropy
from repro.utils.validation import as_float_array, require, require_positive

SYMBOL_PERIODIC = "x"
SYMBOL_ZERO = "y"
SYMBOL_OTHER = "z"
_ALPHABET = (SYMBOL_PERIODIC, SYMBOL_ZERO, SYMBOL_OTHER)

#: All 3-grams over the symbol alphabet, in fixed lexicographic order.
TRIGRAMS: Tuple[str, ...] = tuple(
    "".join(gram) for gram in product(_ALPHABET, repeat=3)
)


def symbolize_intervals(
    intervals: Sequence[float],
    periods: Sequence[float],
    *,
    tolerance: float = 0.15,
) -> str:
    """Symbolize an interval series against the dominant period(s).

    Each interval maps to ``x`` when it matches any dominant period
    within relative ``tolerance`` (or a small integer multiple of one —
    a missed beacon is still periodic behaviour), ``y`` when it is zero
    (same-slot requests), and ``z`` otherwise (paper Section VI-A).
    """
    require_positive(tolerance, "tolerance")
    ivals = as_float_array(intervals, "intervals")
    period_list = [float(p) for p in periods if p > 0]
    symbols = []
    for interval in ivals:
        if interval == 0:
            symbols.append(SYMBOL_ZERO)
            continue
        matched = False
        for period in period_list:
            multiple = max(1.0, round(interval / period))
            if multiple <= 4 and abs(interval - multiple * period) <= tolerance * (
                multiple * period
            ):
                matched = True
                break
        symbols.append(SYMBOL_PERIODIC if matched else SYMBOL_OTHER)
    return "".join(symbols)


def trigram_histogram(symbols: str) -> np.ndarray:
    """Relative frequency of each possible 3-gram (length 27 vector)."""
    counts = np.zeros(len(TRIGRAMS))
    total = max(len(symbols) - 2, 0)
    if total == 0:
        return counts
    index = {gram: i for i, gram in enumerate(TRIGRAMS)}
    for pos in range(total):
        gram = symbols[pos : pos + 3]
        if gram in index:
            counts[index[gram]] += 1
    return counts / total


@dataclass(frozen=True)
class CaseFeatures:
    """The Table II feature set for one beaconing case."""

    series_length: int
    dominant_period: float
    period_count: int
    power: float
    acf_score: float
    similar_sources: int
    entropy: float
    compressibility: float
    interval_mean: float
    interval_cv: float
    lm_score: float
    trigrams: Tuple[float, ...]

    def vector(self) -> np.ndarray:
        """The flat numeric vector consumed by the classifier."""
        head = np.asarray(
            [
                self.series_length,
                self.dominant_period,
                self.period_count,
                self.power,
                self.acf_score,
                self.similar_sources,
                self.entropy,
                self.compressibility,
                self.interval_mean,
                self.interval_cv,
                self.lm_score,
            ],
            dtype=float,
        )
        return np.concatenate([head, np.asarray(self.trigrams, dtype=float)])


FEATURE_NAMES: Tuple[str, ...] = (
    "series_length",
    "dominant_period",
    "period_count",
    "power",
    "acf_score",
    "similar_sources",
    "entropy",
    "compressibility",
    "interval_mean",
    "interval_cv",
    "lm_score",
) + tuple(f"trigram_{gram}" for gram in TRIGRAMS)


def extract_case_features(
    intervals: Sequence[float],
    periods: Sequence[float],
    *,
    power: float = 0.0,
    acf_score: float = 0.0,
    similar_sources: int = 1,
    lm_score: float = 0.0,
    tolerance: float = 0.15,
) -> CaseFeatures:
    """Build the feature set for one case.

    ``periods`` are the verified dominant periods (seconds), strongest
    first; ``similar_sources`` counts distinct sources sharing the
    destination; ``lm_score`` is the normalized language-model score of
    the destination domain.
    """
    require(similar_sources >= 0, "similar_sources must be non-negative")
    ivals = as_float_array(intervals, "intervals")
    symbols = symbolize_intervals(ivals, periods, tolerance=tolerance)
    positive = ivals[ivals > 0]
    interval_mean = float(positive.mean()) if positive.size else 0.0
    interval_cv = (
        float(positive.std() / positive.mean())
        if positive.size and positive.mean() > 0
        else 0.0
    )
    period_list: List[float] = [float(p) for p in periods if p > 0]
    return CaseFeatures(
        series_length=int(ivals.size),
        dominant_period=period_list[0] if period_list else 0.0,
        period_count=len(period_list),
        power=float(power),
        acf_score=float(acf_score),
        similar_sources=int(similar_sources),
        entropy=shannon_entropy(symbols),
        compressibility=gzip_compression_ratio(symbols),
        interval_mean=interval_mean,
        interval_cv=interval_cv,
        lm_score=float(lm_score),
        trigrams=tuple(trigram_histogram(symbols)),
    )
