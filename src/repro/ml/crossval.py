"""Cross-validation for the case classifier.

The paper trains once and evaluates once; a production deployment wants
error bars before trusting the classifier on five months of traffic.
:func:`cross_validate` runs stratified k-fold evaluation and aggregates
the per-fold confusion matrices, so the investigation phase can report
"FPR 0.00 +- 0.00, recall 0.72 +- 0.08" instead of a point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.metrics import ConfusionMatrix, confusion_matrix
from repro.utils.validation import require


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregated k-fold evaluation."""

    folds: Tuple[ConfusionMatrix, ...]

    def _stat(self, attribute: str) -> Tuple[float, float]:
        values = np.asarray([getattr(fold, attribute) for fold in self.folds])
        return float(values.mean()), float(values.std())

    @property
    def accuracy(self) -> Tuple[float, float]:
        """(mean, std) accuracy over folds."""
        return self._stat("accuracy")

    @property
    def recall(self) -> Tuple[float, float]:
        """(mean, std) recall over folds."""
        return self._stat("recall")

    @property
    def false_positive_rate(self) -> Tuple[float, float]:
        """(mean, std) FPR over folds."""
        return self._stat("false_positive_rate")

    def summary(self) -> str:
        """One-line mean +- std report."""
        acc, acc_s = self.accuracy
        rec, rec_s = self.recall
        fpr, fpr_s = self.false_positive_rate
        return (
            f"accuracy {acc:.3f}+-{acc_s:.3f}  "
            f"recall {rec:.3f}+-{rec_s:.3f}  "
            f"FPR {fpr:.3f}+-{fpr_s:.3f}"
        )


def stratified_folds(
    y: Sequence[int], k: int, *, seed: int = 0
) -> List[np.ndarray]:
    """Index folds preserving the class ratio in each fold."""
    require(k >= 2, "k must be at least 2")
    labels = np.asarray(y, dtype=int)
    rng = np.random.default_rng(seed)
    folds: List[List[int]] = [[] for _ in range(k)]
    for cls in np.unique(labels):
        indices = np.flatnonzero(labels == cls)
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % k].append(int(index))
    return [np.asarray(sorted(fold)) for fold in folds]


def cross_validate(
    fit: Callable[[np.ndarray, np.ndarray], object],
    X,
    y,
    *,
    k: int = 5,
    seed: int = 0,
) -> CrossValidationResult:
    """Stratified k-fold evaluation of a binary classifier factory.

    ``fit(X_train, y_train)`` must return an object with
    ``predict(X) -> labels``.  Folds with a single class in either
    split are skipped (tiny datasets); at least one fold must survive.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    require(X.shape[0] == y.size, "X and y must have matching lengths")
    folds = stratified_folds(y, k, seed=seed)
    matrices = []
    for fold in folds:
        test_mask = np.zeros(y.size, dtype=bool)
        test_mask[fold] = True
        y_train, y_test = y[~test_mask], y[test_mask]
        if len(set(y_train.tolist())) < 2 or y_test.size == 0:
            continue
        model = fit(X[~test_mask], y_train)
        predictions = model.predict(X[test_mask])
        matrices.append(confusion_matrix(y_test, predictions))
    require(matrices, "no usable folds (dataset too small or single-class)")
    return CrossValidationResult(folds=tuple(matrices))
