"""CART decision-tree classifier (substrate for the random forest).

A from-scratch implementation of binary-split classification trees with
Gini impurity, supporting the pieces the random forest needs: per-node
random feature subsampling, class-probability leaves, and deterministic
behaviour under a seeded generator.  The feature matrix is numeric
(categorical features are expected to be pre-encoded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import require


@dataclass
class _Node:
    """One tree node; leaves carry a class distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    distribution: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions**2))


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    features: np.ndarray,
    n_classes: int,
    min_samples_leaf: int,
) -> Tuple[int, float, float]:
    """Best (feature, threshold, impurity_decrease) over ``features``.

    Returns feature -1 when no split improves on the parent impurity.
    For each candidate feature the samples are sorted once and the Gini
    of every prefix/suffix is evaluated vectorially via cumulative class
    counts.
    """
    n_samples = y.size
    parent_counts = np.bincount(y, minlength=n_classes).astype(float)
    parent_gini = _gini(parent_counts)
    best = (-1, 0.0, 0.0)
    for feature in features:
        order = np.argsort(X[:, feature], kind="stable")
        values = X[order, feature]
        labels = y[order]
        # One-hot cumulative class counts along the sorted order.
        onehot = np.zeros((n_samples, n_classes))
        onehot[np.arange(n_samples), labels] = 1.0
        prefix = np.cumsum(onehot, axis=0)
        #

        # Valid split positions: between distinct values, honoring leaf size.
        boundaries = np.flatnonzero(values[:-1] < values[1:]) + 1
        if boundaries.size == 0:
            continue
        boundaries = boundaries[
            (boundaries >= min_samples_leaf)
            & (boundaries <= n_samples - min_samples_leaf)
        ]
        if boundaries.size == 0:
            continue
        left_counts = prefix[boundaries - 1]
        right_counts = parent_counts[None, :] - left_counts
        left_n = boundaries.astype(float)
        right_n = n_samples - left_n
        left_gini = 1.0 - np.sum((left_counts / left_n[:, None]) ** 2, axis=1)
        right_gini = 1.0 - np.sum((right_counts / right_n[:, None]) ** 2, axis=1)
        weighted = (left_n * left_gini + right_n * right_gini) / n_samples
        decrease = parent_gini - weighted
        pick = int(np.argmax(decrease))
        if decrease[pick] > best[2] + 1e-12:
            split_at = boundaries[pick]
            threshold = 0.5 * (values[split_at - 1] + values[split_at])
            best = (int(feature), float(threshold), float(decrease[pick]))
    return best


class DecisionTreeClassifier:
    """A CART classification tree.

    Parameters mirror the usual conventions: ``max_features`` limits the
    features examined per split (``"sqrt"``, an int, or None for all) —
    the randomness source of a random forest.
    """

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> None:
        require(max_depth is None or max_depth >= 1, "max_depth must be >= 1")
        require(min_samples_leaf >= 1, "min_samples_leaf must be >= 1")
        require(min_samples_split >= 2, "min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.feature_importances_: Optional[np.ndarray] = None

    # -- fitting ------------------------------------------------------------

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Grow the tree on ``X`` (n, d) and integer labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        require(X.ndim == 2, "X must be 2-dimensional")
        require(X.shape[0] == y.size, "X and y must have matching lengths")
        require(y.size > 0, "training set must not be empty")
        require(y.min() >= 0, "labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = X.shape[1]
        self._n_training = y.size
        self.feature_importances_ = np.zeros(self.n_features_)
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, y, depth=0, rng=rng)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        return self

    def _feature_subset(self, rng: np.random.Generator) -> np.ndarray:
        if self.max_features is None:
            return np.arange(self.n_features_)
        if self.max_features == "sqrt":
            k = max(1, int(np.sqrt(self.n_features_)))
        else:
            k = min(int(self.max_features), self.n_features_)
        return rng.choice(self.n_features_, size=k, replace=False)

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        node = _Node(distribution=counts / counts.sum())
        if (
            y.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or _gini(counts) == 0.0
        ):
            return node
        feature, threshold, decrease = _best_split(
            X, y, self._feature_subset(rng), self.n_classes_, self.min_samples_leaf
        )
        if feature < 0 or decrease <= 0:
            return node
        # Gini importance: impurity decrease weighted by node size.
        self.feature_importances_[feature] += decrease * y.size / self._n_training
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node

    # -- prediction -----------------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability estimates, shape (n, n_classes)."""
        require(self._root is not None, "tree must be fitted before predicting")
        X = np.asarray(X, dtype=float)
        require(X.ndim == 2 and X.shape[1] == self.n_features_,
                "X has the wrong shape for this tree")
        out = np.empty((X.shape[0], self.n_classes_))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.distribution
        return out

    def predict(self, X) -> np.ndarray:
        """Most likely class per sample."""
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def depth(self) -> int:
        """Maximum depth of the fitted tree (0 for a stump)."""
        require(self._root is not None, "tree must be fitted first")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
