"""Classification metrics for the evaluation (paper Table IV, Fig. 11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion matrix in the paper's Table IV layout.

    Rows are the truth (benign / malicious), columns the prediction.
    """

    true_benign_classified_benign: int
    true_benign_classified_malicious: int
    true_malicious_classified_benign: int
    true_malicious_classified_malicious: int

    @property
    def tn(self) -> int:
        """True negatives (benign correctly classified benign)."""
        return self.true_benign_classified_benign

    @property
    def fp(self) -> int:
        """False positives (benign classified malicious)."""
        return self.true_benign_classified_malicious

    @property
    def fn(self) -> int:
        """False negatives (malicious classified benign)."""
        return self.true_malicious_classified_benign

    @property
    def tp(self) -> int:
        """True positives (malicious correctly classified malicious)."""
        return self.true_malicious_classified_malicious

    @property
    def total(self) -> int:
        """All classified cases."""
        return self.tn + self.fp + self.fn + self.tp

    @property
    def accuracy(self) -> float:
        """Fraction of correct classifications."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was flagged."""
        flagged = self.tp + self.fp
        return self.tp / flagged if flagged else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was malicious."""
        positives = self.tp + self.fn
        return self.tp / positives if positives else 1.0

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN); the paper reports 0 against VirusTotal."""
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else 0.0

    def as_table(self) -> str:
        """Render in the paper's Table IV layout."""
        header = f"{'':16s} {'classified benign':>18s} {'classified malicious':>21s}"
        row_b = f"{'true benign':16s} {self.tn:>18d} {self.fp:>21d}"
        row_m = f"{'true malicious':16s} {self.fn:>18d} {self.tp:>21d}"
        return "\n".join((header, row_b, row_m))


def confusion_matrix(y_true: Sequence[int], y_pred: Sequence[int]) -> ConfusionMatrix:
    """Binary confusion matrix; labels are 0 = benign, 1 = malicious."""
    t = np.asarray(y_true, dtype=int)
    p = np.asarray(y_pred, dtype=int)
    require(t.size == p.size, "y_true and y_pred must have matching lengths")
    require(t.size > 0, "labels must not be empty")
    require(set(np.unique(t)) <= {0, 1}, "y_true must be binary (0/1)")
    require(set(np.unique(p)) <= {0, 1}, "y_pred must be binary (0/1)")
    return ConfusionMatrix(
        true_benign_classified_benign=int(np.sum((t == 0) & (p == 0))),
        true_benign_classified_malicious=int(np.sum((t == 0) & (p == 1))),
        true_malicious_classified_benign=int(np.sum((t == 1) & (p == 0))),
        true_malicious_classified_malicious=int(np.sum((t == 1) & (p == 1))),
    )


def precision_at_k(y_true_ranked: Sequence[int], k: int) -> float:
    """Precision of the top-``k`` entries of a ranked label list.

    ``y_true_ranked`` holds the true labels in ranking order (best
    first).  Reproduces the paper's headline "48 of the top 50 (96%)
    confirmed malicious" measurement.
    """
    require(k >= 1, "k must be >= 1")
    labels = np.asarray(y_true_ranked, dtype=int)
    require(labels.size > 0, "ranking must not be empty")
    top = labels[: min(k, labels.size)]
    return float(top.mean())


def false_negatives_vs_reviewed(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    review_order: Sequence[int],
) -> np.ndarray:
    """Remaining false negatives after reviewing the first i cases.

    ``review_order`` permutes case indices (most-uncertain first, in the
    paper).  Reviewing a case reveals its true label, clearing it from
    the false-negative count.  Index 0 of the result is the count before
    any review; the curve reproduces Fig. 11.
    """
    t = np.asarray(y_true, dtype=int)
    p = np.asarray(y_pred, dtype=int)
    order = np.asarray(review_order, dtype=int)
    require(t.size == p.size, "y_true and y_pred must have matching lengths")
    require(order.size <= t.size, "review_order cannot exceed the case count")
    is_fn = (t == 1) & (p == 0)
    remaining = int(is_fn.sum())
    curve = [remaining]
    for index in order:
        if is_fn[index]:
            remaining -= 1
        curve.append(remaining)
    return np.asarray(curve)
