"""Command-line interface.

Four subcommands cover the operational surface:

- ``simulate`` — generate a labelled synthetic enterprise trace,
- ``detect``   — run the core detector on a timestamp list,
- ``pipeline`` — run the 8-step methodology over a proxy log,
- ``score``    — score domain names under the language model.

Run ``python -m repro <command> --help`` for the options.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.detector import DetectorConfig, PeriodicityDetector
from repro.filtering.pipeline import BaywatchPipeline, PipelineConfig
from repro.lm.domains import default_scorer
from repro.synthetic.enterprise import EnterpriseConfig, EnterpriseSimulator
from repro.synthetic.logs import read_log, write_log


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BAYWATCH beaconing detection (DSN 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic enterprise trace")
    sim.add_argument("output", type=Path, help="proxy log output path (TSV; .gz ok)")
    sim.add_argument("--hosts", type=int, default=50)
    sim.add_argument("--sites", type=int, default=150)
    sim.add_argument("--hours", type=float, default=24.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--truth", type=Path, default=None,
        help="write ground truth (malicious destinations) as JSON",
    )

    det = sub.add_parser("detect", help="detect periodicity in timestamps")
    det.add_argument(
        "input", type=Path,
        help="file with one event timestamp (seconds) per line; '-' for stdin",
    )
    det.add_argument("--time-scale", type=float, default=1.0)
    det.add_argument("--seed", type=int, default=0)

    pipe = sub.add_parser("pipeline", help="run the 8-step pipeline on a proxy log")
    pipe.add_argument("input", type=Path, help="proxy log (TSV; .gz ok)")
    pipe.add_argument("--tau-p", type=float, default=0.01,
                      help="local whitelist popularity threshold")
    pipe.add_argument("--percentile", type=float, default=0.9,
                      help="ranking score percentile to report")
    pipe.add_argument("--top", type=int, default=20,
                      help="print at most this many ranked cases")

    score = sub.add_parser("score", help="score domains under the 3-gram LM")
    score.add_argument("domains", nargs="+", help="domain names to score")

    rep = sub.add_parser(
        "report", help="run the pipeline and emit an analyst report"
    )
    rep.add_argument("input", type=Path, help="proxy log (TSV; .gz ok)")
    rep.add_argument("--tau-p", type=float, default=0.01)
    rep.add_argument("--percentile", type=float, default=0.9)
    rep.add_argument("--max-cases", type=int, default=10)
    rep.add_argument("--output", type=Path, default=None,
                     help="write the report here instead of stdout")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = EnterpriseConfig(
        n_hosts=args.hosts,
        n_sites=args.sites,
        duration=args.hours * 3600.0,
        seed=args.seed,
    )
    records, truth = EnterpriseSimulator(config).generate()
    count = write_log(records, args.output,
                      compress=args.output.suffix == ".gz")
    print(f"wrote {count} events to {args.output}")
    if args.truth is not None:
        payload = {
            "malicious_destinations": sorted(truth.malicious_destinations),
            "infected_hosts": sorted(truth.infected_hosts),
            "benign_periodic_destinations": sorted(
                truth.benign_periodic_destinations
            ),
        }
        args.truth.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote ground truth to {args.truth}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    if str(args.input) == "-":
        lines = sys.stdin.read().split()
    else:
        lines = args.input.read_text(encoding="utf-8").split()
    timestamps = [float(token) for token in lines if token.strip()]
    detector = PeriodicityDetector(
        DetectorConfig(time_scale=args.time_scale, seed=args.seed)
    )
    result = detector.detect(timestamps)
    print(f"events:   {result.n_events}")
    print(f"duration: {result.duration:.1f} s")
    print(f"periodic: {result.periodic}")
    if not result.periodic:
        print(f"reason:   {result.rejection_reason}")
        return 1
    for candidate in result.candidates:
        print(
            f"  period {candidate.period:10.2f} s   "
            f"ACF {candidate.acf_score:.2f}   "
            f"power {candidate.power:.2f}   origin {candidate.origin}"
        )
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    records = list(read_log(args.input))
    config = PipelineConfig(
        local_whitelist_threshold=args.tau_p,
        ranking_percentile=args.percentile,
    )
    report = BaywatchPipeline(config).run_records(records)
    print(report.funnel.as_text())
    print()
    print(f"{'rank':>4s}  {'score':>6s}  {'period':>10s}  {'clients':>7s}  domain")
    for rank, case in enumerate(report.ranked_cases[: args.top], 1):
        period = f"{case.smallest_period:.1f}s" if case.smallest_period else "-"
        print(
            f"{rank:>4d}  {case.rank_score:>6.2f}  {period:>10s}  "
            f"{case.similar_sources:>7d}  {case.destination}"
        )
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    scorer = default_scorer()
    for domain, value in scorer.score_many(args.domains):
        marker = "SUSPICIOUS" if scorer.is_suspicious(domain) else ""
        print(f"{value:8.3f}  {domain}  {marker}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_report

    records = list(read_log(args.input))
    config = PipelineConfig(
        local_whitelist_threshold=args.tau_p,
        ranking_percentile=args.percentile,
    )
    pipeline_report = BaywatchPipeline(config).run_records(records)
    text = render_report(pipeline_report, max_cases=args.max_cases)
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "detect": _cmd_detect,
    "pipeline": _cmd_pipeline,
    "score": _cmd_score,
    "report": _cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
