"""Command-line interface.

The subcommands cover the operational surface:

- ``simulate`` — generate a labelled synthetic enterprise trace,
- ``detect``   — run the core detector on a timestamp list,
- ``pipeline`` — run the 8-step methodology over a proxy log,
- ``run``      — fault-tolerant sharded batch run (checkpoint/resume),
- ``score``    — score domain names under the language model,
- ``report``   — run the pipeline and emit an analyst report,
- ``stats``    — render a run report from saved telemetry,
- ``trace``    — render a distributed trace tree / export Chrome JSON,
- ``watch``    — watch a run's live status (journal or HTTP),
- ``explain``  — show one pair's verdict chain from saved provenance,
- ``audit``    — per-stage drop/near-miss analytics from saved provenance,
- ``diff-runs`` — verdict-level drift between two provenance stores,
- ``bench``    — run benchmark suites / gate against a baseline.

``pipeline`` and ``run`` accept ``--provenance <dir>`` (with
``--provenance-sample``) to record per-pair decision provenance —
one :class:`~repro.obs.VerdictRecord` per funnel step per kept pair —
which ``explain``/``audit``/``diff-runs`` read back (see
``docs/OBSERVABILITY.md``).

``run`` is the operational front end: the MapReduce-backed runner with
bounded shards, durable JSONL checkpoints (``--checkpoint-dir`` /
``--resume``), worker-pool recovery (``--task-timeout``,
``--max-retries``, ``--retry-backoff``), and quarantine of poison-pill
pairs (see ``docs/OPERATIONS.md``).  It exits 3 when ``--max-shards``
stopped the run before every shard completed.  Every sharded run
journals its progress to ``events.jsonl`` in the checkpoint (or
telemetry) directory; ``--status-port N`` additionally serves
``/status``, ``/metrics``, and ``/events`` over HTTP for the duration
of the run, and ``repro watch`` follows either the journal file or the
HTTP service.

``pipeline`` and ``report`` accept ``--telemetry <dir>`` to collect
per-stage metrics and write ``report.txt`` / ``metrics.jsonl`` /
``metrics.prom`` (see ``docs/OBSERVABILITY.md``).  ``bench`` writes
``BENCH_<suite>.json`` perf reports and, with ``--compare``, renders a
baseline/candidate delta table and exits non-zero on regressions beyond
``--tolerance``.  ``-v`` turns on INFO logging, ``-vv`` DEBUG.

Run ``python -m repro <command> --help`` for the options.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.detector import DetectorConfig, PeriodicityDetector
from repro.filtering.pipeline import (
    BaywatchPipeline,
    PipelineConfig,
    PipelineReport,
)
from repro.lm.domains import default_scorer
from repro.obs import (
    MetricsRegistry,
    configure_logging,
    from_jsonl,
    render_run_report,
    scoped_registry,
    write_telemetry,
)
from repro.synthetic.enterprise import EnterpriseConfig, EnterpriseSimulator
from repro.sources.proxy import read_log, write_log

logger = logging.getLogger(__name__)


def _add_provenance_options(parser: argparse.ArgumentParser) -> None:
    """Shared ``--provenance`` flags for ``pipeline`` and ``run``."""
    parser.add_argument(
        "--provenance", type=Path, default=None, metavar="DIR",
        help="record per-pair verdict chains and write provenance.jsonl "
             "into DIR (read it back with repro explain/audit/diff-runs)",
    )
    parser.add_argument(
        "--provenance-sample", type=float, default=0.05, metavar="RATE",
        help="fraction of early-dropped pairs that keep full verdict "
             "chains; survivors and near-misses are always recorded "
             "(default 0.05)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BAYWATCH beaconing detection (DSN 2016 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v: INFO logging, -vv: DEBUG (to stderr)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic enterprise trace")
    sim.add_argument("output", type=Path, help="proxy log output path (TSV; .gz ok)")
    sim.add_argument("--hosts", type=int, default=50)
    sim.add_argument("--sites", type=int, default=150)
    sim.add_argument("--hours", type=float, default=24.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--truth", type=Path, default=None,
        help="write ground truth (malicious destinations) as JSON",
    )

    det = sub.add_parser("detect", help="detect periodicity in timestamps")
    det.add_argument(
        "input", type=Path,
        help="file with one event timestamp (seconds) per line; '-' for stdin",
    )
    det.add_argument("--time-scale", type=float, default=1.0)
    det.add_argument("--seed", type=int, default=0)

    pipe = sub.add_parser("pipeline", help="run the 8-step pipeline on a proxy log")
    pipe.add_argument("input", type=Path, help="proxy log (TSV; .gz ok)")
    pipe.add_argument("--tau-p", type=float, default=0.01,
                      help="local whitelist popularity threshold")
    pipe.add_argument("--percentile", type=float, default=0.9,
                      help="ranking score percentile to report")
    pipe.add_argument("--top", type=int, default=20,
                      help="print at most this many ranked cases")
    pipe.add_argument(
        "--detection-batch-size", type=int, default=0, metavar="N",
        help="run periodicity detection in batches of N pairs over the "
             "shape-grouped FFT/ACF kernels (0 = serial per-pair path; "
             "results are identical either way)",
    )
    pipe.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="collect run telemetry and write report.txt/metrics.jsonl/"
             "metrics.prom into DIR",
    )
    pipe.add_argument(
        "--columnar", action="store_true",
        help="ingest the log through the columnar chunk parser and "
             "vectorized fold instead of per-record objects (reports "
             "are identical either way; markedly faster on large logs)",
    )
    _add_provenance_options(pipe)

    runp = sub.add_parser(
        "run",
        help="fault-tolerant sharded batch run with checkpoint/resume",
    )
    runp.add_argument("input", type=Path, help="proxy log (TSV; .gz ok)")
    runp.add_argument("--tau-p", type=float, default=0.01,
                      help="local whitelist popularity threshold")
    runp.add_argument("--percentile", type=float, default=0.9,
                      help="ranking score percentile to report")
    runp.add_argument("--top", type=int, default=20,
                      help="print at most this many ranked cases")
    runp.add_argument("--workers", type=int, default=1,
                      help="worker processes for the MapReduce engine")
    runp.add_argument(
        "--executor", default=None, metavar="BACKEND",
        choices=("serial", "threads", "processes", "shard-queue"),
        help="execution backend: serial, threads (GIL-releasing FFT "
             "kernels scale in one process), processes (default when "
             "--workers > 1), or shard-queue (tasks are drained by "
             "'repro worker' processes sharing --checkpoint-dir)",
    )
    runp.add_argument(
        "--claim-ttl", type=float, default=30.0, metavar="SECONDS",
        help="shard-queue worker lease: a claim not refreshed for this "
             "long is requeued to another worker (default 30)",
    )
    runp.add_argument("--shard-size", type=int, default=256,
                      help="pairs per detection shard (default 256)")
    runp.add_argument(
        "--checkpoint-dir", type=Path, default=None, metavar="DIR",
        help="persist completed shard outputs (JSONL) into DIR",
    )
    runp.add_argument(
        "--resume", action="store_true",
        help="reuse completed shards found in --checkpoint-dir",
    )
    runp.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="process at most N new shards, then exit 3 (requires "
             "--checkpoint-dir; resume later with --resume)",
    )
    runp.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry parallel tasks running longer than this",
    )
    runp.add_argument("--max-retries", type=int, default=2,
                      help="retry budget per task (default 2)")
    runp.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential retry backoff (default 0.5)",
    )
    runp.add_argument(
        "--no-quarantine", action="store_true",
        help="abort the batch on a task that fails every attempt "
             "instead of quarantining it",
    )
    runp.add_argument(
        "--analysis-time-scale", type=float, default=None, metavar="SECONDS",
        help="rescale summaries to this granularity before detection",
    )
    runp.add_argument(
        "--detection-batch-size", type=int, default=0, metavar="N",
        help="run each reduce partition's detection in batches of N "
             "pairs over the shape-grouped FFT/ACF kernels (0 = serial "
             "per-pair path; results are identical either way)",
    )
    runp.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="collect run telemetry and write report.txt/metrics.jsonl/"
             "metrics.prom into DIR",
    )
    runp.add_argument(
        "--run-id", default=None, metavar="ID",
        help="explicit run identifier for logs and the event journal "
             "(default: generated)",
    )
    runp.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="serve live /status, /metrics, and /events on "
             "127.0.0.1:PORT for the duration of the run (0 = ephemeral "
             "port; requires --checkpoint-dir or --telemetry for the "
             "event journal)",
    )
    runp.add_argument(
        "--status-linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the status service up this long after the run ends "
             "(lets pollers observe the final state)",
    )
    runp.add_argument(
        "--columnar", action="store_true",
        help="ingest the log through the columnar chunk parser and "
             "vectorized fold instead of per-record objects (reports "
             "and checkpoints are identical either way)",
    )
    runp.add_argument(
        "--shared-memory", action="store_true",
        help="hand detection workers their pair payloads through a "
             "shared-memory arena instead of pickled summaries "
             "(reports are identical either way)",
    )
    _add_provenance_options(runp)

    score = sub.add_parser("score", help="score domains under the 3-gram LM")
    score.add_argument("domains", nargs="+", help="domain names to score")

    rep = sub.add_parser(
        "report", help="run the pipeline and emit an analyst report"
    )
    rep.add_argument("input", type=Path, help="proxy log (TSV; .gz ok)")
    rep.add_argument("--tau-p", type=float, default=0.01)
    rep.add_argument("--percentile", type=float, default=0.9)
    rep.add_argument("--max-cases", type=int, default=10)
    rep.add_argument("--output", type=Path, default=None,
                     help="write the report here instead of stdout")
    rep.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="collect run telemetry and write report.txt/metrics.jsonl/"
             "metrics.prom into DIR",
    )

    stats = sub.add_parser(
        "stats", help="render a run report from saved telemetry"
    )
    stats.add_argument(
        "path", type=Path,
        help="telemetry directory (or metrics.jsonl file) written by "
             "--telemetry",
    )
    stats.add_argument(
        "--profile", action="store_true",
        help="also render span-profile hotspots (profiles.jsonl)",
    )

    trace = sub.add_parser(
        "trace", help="render a distributed trace tree from saved telemetry"
    )
    trace.add_argument(
        "path", type=Path,
        help="telemetry directory (or trace.jsonl file) written by "
             "--telemetry",
    )
    trace.add_argument(
        "--chrome", type=Path, default=None, metavar="OUT.json",
        help="also export Chrome trace-event JSON (load in Perfetto or "
             "chrome://tracing)",
    )

    watch = sub.add_parser(
        "watch", help="watch a run's live status (journal file or HTTP)"
    )
    watch.add_argument(
        "path", type=Path, nargs="?", default=None,
        help="event journal (events.jsonl) or the directory holding it",
    )
    watch.add_argument(
        "--url", default=None, metavar="URL",
        help="poll a repro run --status-port service instead of reading "
             "the journal (e.g. http://127.0.0.1:8765)",
    )
    watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls (default 2)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="print one status snapshot and exit",
    )

    worker = sub.add_parser(
        "worker",
        help="drain shard-queue tasks from a run's checkpoint directory",
    )
    worker.add_argument(
        "--checkpoint-dir", type=Path, required=True, metavar="DIR",
        help="the coordinator run's --checkpoint-dir (the task queue "
             "lives under DIR/queue)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="SECONDS",
        help="how often to look for new tasks when idle (default 0.2)",
    )
    worker.add_argument(
        "--claim-ttl", type=float, default=30.0, metavar="SECONDS",
        help="lease refresh base: claims are touched every ttl/4 so the "
             "coordinator can tell a crash from slow work (default 30; "
             "match the coordinator's --claim-ttl)",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after this long with no tasks (default: wait until "
             "the coordinator's stop sentinel)",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after processing N tasks (chaos/maintenance drills)",
    )

    explain = sub.add_parser(
        "explain",
        help="show the verdict chain for one (host, destination) pair",
    )
    explain.add_argument("source", help="client host (source IP / name)")
    explain.add_argument("destination", help="destination domain")
    explain.add_argument(
        "path", type=Path,
        help="provenance.jsonl, or the --provenance / checkpoint "
             "directory holding it",
    )

    audit = sub.add_parser(
        "audit",
        help="per-stage drop-reason histograms and near-misses for a run",
    )
    audit.add_argument(
        "path", type=Path,
        help="provenance.jsonl, or the --provenance / checkpoint "
             "directory holding it",
    )
    audit.add_argument(
        "--json", action="store_true",
        help="emit the audit report as JSON instead of text",
    )

    diff = sub.add_parser(
        "diff-runs",
        help="verdict-level drift between two provenance stores",
    )
    diff.add_argument("run_a", type=Path, help="baseline provenance store")
    diff.add_argument("run_b", type=Path, help="candidate provenance store")
    diff.add_argument(
        "--json", action="store_true",
        help="emit the diff as JSON instead of text",
    )

    bench = sub.add_parser(
        "bench", help="run perf benchmark suites / compare two reports"
    )
    bench.add_argument(
        "--suite", default="micro", metavar="NAME",
        help="suite to run: micro, pipeline, mapreduce, ingestion, "
             "detection_batch, scalability, or 'all' (default: micro)",
    )
    bench.add_argument("--repeats", type=int, default=5,
                       help="timed iterations per benchmark (default 5)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup iterations (default 1)")
    bench.add_argument(
        "--output-dir", type=Path, default=Path("."), metavar="DIR",
        help="where BENCH_<suite>.json is written (default: cwd)",
    )
    bench.add_argument(
        "--no-memory", action="store_true",
        help="skip the tracemalloc peak-allocation probe",
    )
    bench.add_argument(
        "--profile", choices=["cprofile", "tracemalloc"], default=None,
        help="run one extra profiled iteration per benchmark and attach "
             "top-N hotspots to the report",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("BASELINE", "CANDIDATE"),
        type=Path, default=None,
        help="compare two BENCH_*.json files instead of running suites; "
             "exits 1 on regressions beyond --tolerance",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.10,
        help="fractional mean-time regression allowed before --compare "
             "fails (default 0.10)",
    )
    return parser


def _run_instrumented(
    telemetry: Optional[Path], run: Callable[[], PipelineReport]
) -> Tuple[PipelineReport, Optional[Path]]:
    """Run ``run()``, collecting and writing telemetry when requested.

    Returns the report and the telemetry directory (None when telemetry
    was not requested).
    """
    if telemetry is None:
        return run(), None
    if telemetry.exists() and not telemetry.is_dir():
        raise SystemExit(
            f"error: --telemetry target {telemetry} exists and is not a "
            f"directory"
        )
    registry = MetricsRegistry()
    with scoped_registry(registry):
        report = run()
    write_telemetry(telemetry, registry, funnel=report.funnel)
    return report, telemetry


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = EnterpriseConfig(
        n_hosts=args.hosts,
        n_sites=args.sites,
        duration=args.hours * 3600.0,
        seed=args.seed,
    )
    records, truth = EnterpriseSimulator(config).generate()
    count = write_log(records, args.output,
                      compress=args.output.suffix == ".gz")
    print(f"wrote {count} events to {args.output}")
    if args.truth is not None:
        payload = {
            "malicious_destinations": sorted(truth.malicious_destinations),
            "infected_hosts": sorted(truth.infected_hosts),
            "benign_periodic_destinations": sorted(
                truth.benign_periodic_destinations
            ),
        }
        args.truth.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote ground truth to {args.truth}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    if str(args.input) == "-":
        lines = sys.stdin.read().split()
    else:
        lines = args.input.read_text(encoding="utf-8").split()
    timestamps = [float(token) for token in lines if token.strip()]
    detector = PeriodicityDetector(
        DetectorConfig(time_scale=args.time_scale, seed=args.seed)
    )
    result = detector.detect(timestamps)
    print(f"events:   {result.n_events}")
    print(f"duration: {result.duration:.1f} s")
    print(f"periodic: {result.periodic}")
    if not result.periodic:
        print(f"reason:   {result.rejection_reason}")
        return 1
    for candidate in result.candidates:
        print(
            f"  period {candidate.period:10.2f} s   "
            f"ACF {candidate.acf_score:.2f}   "
            f"power {candidate.power:.2f}   origin {candidate.origin}"
        )
    return 0


def _provenance_policy(args: argparse.Namespace):
    """Build the ProvenancePolicy for --provenance, or None without it."""
    if args.provenance is None:
        return None
    from repro.obs import ProvenancePolicy

    try:
        return ProvenancePolicy(sample_early_drops=args.provenance_sample)
    except ValueError as exc:
        raise SystemExit(f"error: --provenance-sample: {exc}")


def _write_provenance_dir(directory: Path, report: PipelineReport) -> None:
    from repro.obs import PROVENANCE_FILE, write_provenance

    path = directory / PROVENANCE_FILE
    write_provenance(path, report.provenance)
    print(f"wrote {len(report.provenance)} verdict records to {path}")


def _cmd_pipeline(args: argparse.Namespace) -> int:
    config = PipelineConfig(
        local_whitelist_threshold=args.tau_p,
        ranking_percentile=args.percentile,
        detection_batch_size=args.detection_batch_size,
        provenance=_provenance_policy(args),
    )
    if args.columnar:
        from repro.sources.columnar import read_log_chunks

        chunks = read_log_chunks(args.input)
        run = lambda: BaywatchPipeline(config).run_chunks(chunks)  # noqa: E731
    else:
        records = read_log(args.input)
        run = lambda: BaywatchPipeline(config).run_records(records)  # noqa: E731
    report, telemetry_dir = _run_instrumented(args.telemetry, run)
    if args.provenance is not None:
        _write_provenance_dir(args.provenance, report)
    print(report.funnel.as_text())
    print()
    print(f"{'rank':>4s}  {'score':>6s}  {'period':>10s}  {'clients':>7s}  domain")
    for rank, case in enumerate(report.ranked_cases[: args.top], 1):
        period = f"{case.smallest_period:.1f}s" if case.smallest_period else "-"
        print(
            f"{rank:>4d}  {case.rank_score:>6.2f}  {period:>10s}  "
            f"{case.similar_sources:>7d}  {case.destination}"
        )
    if telemetry_dir is not None:
        print(f"wrote telemetry to {telemetry_dir}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import time as _time

    from repro.jobs.checkpoint import CheckpointMismatch
    from repro.jobs.runner import BaywatchRunner, IncompleteRunError
    from repro.mapreduce.engine import MapReduceEngine
    from repro.obs import JOURNAL_FILE, StatusServer, new_run_id

    config = PipelineConfig(
        local_whitelist_threshold=args.tau_p,
        ranking_percentile=args.percentile,
        detection_batch_size=args.detection_batch_size,
        use_shared_memory=args.shared_memory,
        provenance=_provenance_policy(args),
    )
    if args.executor == "shard-queue" and args.checkpoint_dir is None:
        print(
            "error: --executor shard-queue needs --checkpoint-dir (the "
            "task queue the 'repro worker' fleet drains lives there)",
            file=sys.stderr,
        )
        return 2
    executor = None
    if args.executor is not None:
        from repro.mapreduce.executors import make_executor

        executor = make_executor(
            args.executor,
            n_workers=args.workers,
            claim_ttl=args.claim_ttl,
        )
    engine = MapReduceEngine(
        n_workers=args.workers,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        retry_backoff=args.retry_backoff,
        quarantine=not args.no_quarantine,
        executor=executor,
    )
    runner = BaywatchRunner(config, engine=engine)
    checkpoint_dir = (
        str(args.checkpoint_dir) if args.checkpoint_dir is not None else None
    )
    run_id = args.run_id if args.run_id else new_run_id()
    # The journal lives next to the checkpoints when there are any,
    # falling back to the telemetry directory for checkpoint-less runs.
    journal_home = checkpoint_dir or (
        str(args.telemetry) if args.telemetry is not None else None
    )
    if args.status_port is not None and journal_home is None:
        print(
            "error: --status-port needs --checkpoint-dir or --telemetry "
            "(the event journal lives there)", file=sys.stderr,
        )
        return 2
    if args.telemetry is not None and args.telemetry.exists() \
            and not args.telemetry.is_dir():
        print(
            f"error: --telemetry target {args.telemetry} exists and is "
            f"not a directory", file=sys.stderr,
        )
        return 2

    # The status service needs the *live* registry (for /metrics), so
    # one is owned here rather than delegating to _run_instrumented; a
    # bare --status-port run gets live metrics without writing files.
    registry: Optional[MetricsRegistry] = None
    if args.telemetry is not None or args.status_port is not None:
        registry = MetricsRegistry()

    server: Optional[StatusServer] = None
    if args.status_port is not None:
        server = StatusServer(
            journal_path=Path(journal_home) / JOURNAL_FILE,
            registry=registry,
            port=args.status_port,
        )
        port = server.start()
        print(f"status service on http://127.0.0.1:{port} (run {run_id})")

    def go() -> PipelineReport:
        sharded_kwargs = dict(
            analysis_time_scale=args.analysis_time_scale,
            shard_size=args.shard_size,
            checkpoint_dir=checkpoint_dir,
            resume=args.resume,
            max_shards=args.max_shards,
            run_id=run_id,
            journal_dir=journal_home,
        )
        with engine:
            if args.columnar:
                from repro.sources.columnar import read_log_chunks

                return runner.run_chunks_sharded(
                    read_log_chunks(args.input), **sharded_kwargs
                )
            return runner.run_sharded(read_log(args.input), **sharded_kwargs)

    telemetry_dir: Optional[Path] = None
    try:
        if registry is not None:
            with scoped_registry(registry):
                report = go()
        else:
            report = go()
        if args.telemetry is not None:
            write_telemetry(args.telemetry, registry, funnel=report.funnel)
            telemetry_dir = args.telemetry
    except IncompleteRunError as exc:
        print(f"run incomplete: {exc}")
        return 3
    except CheckpointMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            if args.status_linger > 0:
                _time.sleep(args.status_linger)
            server.stop()
    if args.provenance is not None:
        _write_provenance_dir(args.provenance, report)
    print(report.funnel.as_text())
    print()
    print(f"{'rank':>4s}  {'score':>6s}  {'period':>10s}  {'clients':>7s}  domain")
    for rank, case in enumerate(report.ranked_cases[: args.top], 1):
        period = f"{case.smallest_period:.1f}s" if case.smallest_period else "-"
        print(
            f"{rank:>4d}  {case.rank_score:>6.2f}  {period:>10s}  "
            f"{case.similar_sources:>7d}  {case.destination}"
        )
    if report.quarantined:
        print()
        print(f"quarantined {len(report.quarantined)} unit(s):")
        for entry in report.quarantined:
            print(f"  {entry.phase}  {entry.key!r}  {entry.error}")
        if checkpoint_dir is not None:
            print(f"quarantine report: {args.checkpoint_dir}/quarantine.jsonl")
    if telemetry_dir is not None:
        print(f"wrote telemetry to {telemetry_dir}")
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    scorer = default_scorer()
    for domain, value in scorer.score_many(args.domains):
        marker = "SUSPICIOUS" if scorer.is_suspicious(domain) else ""
        print(f"{value:8.3f}  {domain}  {marker}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_report

    records = read_log(args.input)
    config = PipelineConfig(
        local_whitelist_threshold=args.tau_p,
        ranking_percentile=args.percentile,
    )
    pipeline_report, telemetry_dir = _run_instrumented(
        args.telemetry, lambda: BaywatchPipeline(config).run_records(records)
    )
    text = render_report(pipeline_report, max_cases=args.max_cases)
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote report to {args.output}")
    else:
        print(text)
    if telemetry_dir is not None:
        print(f"wrote telemetry to {telemetry_dir}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import PROFILES_FILE, profiles_from_jsonl, render_profiles

    path = args.path
    if path.is_dir():
        path = path / "metrics.jsonl"
    if not path.exists():
        print(f"no telemetry found at {path}", file=sys.stderr)
        return 1
    text = path.read_text(encoding="utf-8")
    try:
        registry, funnel = from_jsonl(text)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"telemetry at {path} is not readable: {exc}", file=sys.stderr)
        return 1
    if registry.is_empty() and not funnel:
        print(f"telemetry at {path} is empty", file=sys.stderr)
        return 1
    print(render_run_report(registry, funnel=funnel or None), end="")
    if args.profile:
        profiles_path = path.parent / PROFILES_FILE
        if not profiles_path.exists():
            print(
                f"no profiles at {profiles_path} (run with REPRO_PROFILE="
                f"cprofile|tracemalloc or span(profile=...))"
            )
        else:
            print()
            print(
                render_profiles(
                    profiles_from_jsonl(
                        profiles_path.read_text(encoding="utf-8")
                    )
                ),
                end="",
            )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        TRACE_FILE,
        render_trace_tree,
        spans_from_jsonl,
        to_chrome_trace,
    )

    path = args.path
    if path.is_dir():
        path = path / TRACE_FILE
    if not path.exists():
        print(
            f"no trace found at {path} (sharded runs record one when "
            f"--telemetry is on)", file=sys.stderr,
        )
        return 1
    try:
        records = spans_from_jsonl(path.read_text(encoding="utf-8"))
    except (KeyError, TypeError, ValueError) as exc:
        print(
            f"trace at {path} is not readable (corrupt record or newer "
            f"schema): {exc}", file=sys.stderr,
        )
        return 1
    if not records:
        print(f"trace at {path} is empty", file=sys.stderr)
        return 1
    print(render_trace_tree(records), end="")
    if args.chrome is not None:
        args.chrome.write_text(to_chrome_trace(records), encoding="utf-8")
        print(f"wrote Chrome trace to {args.chrome}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import time as _time
    import urllib.error
    import urllib.request

    from repro.obs import JOURNAL_FILE, build_status, read_events, render_status

    if args.url is None and args.path is None:
        print(
            "error: give the journal path (events.jsonl or its "
            "directory) or --url of a --status-port service",
            file=sys.stderr,
        )
        return 2

    def snapshot() -> dict:
        if args.url is not None:
            url = args.url.rstrip("/") + "/status"
            with urllib.request.urlopen(url, timeout=10) as response:
                return json.loads(response.read().decode("utf-8"))
        path = args.path
        if path.is_dir():
            path = path / JOURNAL_FILE
        return build_status(read_events(path))

    first = True
    while True:
        try:
            status = snapshot()
        except (OSError, urllib.error.URLError, ValueError) as exc:
            print(f"error: cannot read status: {exc}", file=sys.stderr)
            return 1
        if not first:
            print()
        first = False
        print(render_status(status), end="")
        if args.once or status.get("state") in ("finished", "suspended"):
            return 0
        _time.sleep(args.interval)


def _read_provenance_store(path: Path) -> Optional[list]:
    """Read a provenance store, printing a one-line error on failure."""
    from repro.obs import ProvenanceSchemaError, read_provenance

    try:
        return read_provenance(path)
    except (FileNotFoundError, ProvenanceSchemaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import render_explain

    records = _read_provenance_store(args.path)
    if records is None:
        return 1
    chain = [
        record for record in records
        if record.source == args.source and record.destination == args.destination
    ]
    if not chain:
        print(
            f"no verdict records for ({args.source}, {args.destination}) "
            f"in {args.path} — the pair may have been dropped early and "
            f"not sampled (raise --provenance-sample to keep more early "
            f"drops)", file=sys.stderr,
        )
        return 1
    print(render_explain(chain), end="")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.obs import audit_report, render_audit

    records = _read_provenance_store(args.path)
    if records is None:
        return 1
    report = audit_report(records)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_audit(report), end="")
    return 0


def _cmd_diff_runs(args: argparse.Namespace) -> int:
    from repro.obs import diff_runs, render_diff

    records_a = _read_provenance_store(args.run_a)
    if records_a is None:
        return 1
    records_b = _read_provenance_store(args.run_b)
    if records_b is None:
        return 1
    diff = diff_runs(records_a, records_b)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
        return 0
    print(render_diff(diff), end="")
    return 1 if diff["changed"] or diff["only_a"] or diff["only_b"] else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        BenchReport,
        BenchRunner,
        compare_reports,
        render_bench_report,
        render_comparison,
    )

    if args.compare is not None:
        reports = []
        for path in args.compare:
            try:
                reports.append(BenchReport.load(path))
            except (OSError, ValueError, KeyError) as exc:
                print(f"cannot read bench report {path}: {exc}",
                      file=sys.stderr)
                return 1
        try:
            comparison = compare_reports(
                reports[0], reports[1], tolerance=args.tolerance
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(render_comparison(comparison), end="")
        return 0 if comparison.ok else 1

    from repro.obs.bench_suites import build_suite, suite_names

    names = suite_names() if args.suite == "all" else [args.suite]
    try:
        runner = BenchRunner(
            repeats=args.repeats,
            warmup=args.warmup,
            trace_memory=not args.no_memory,
            profile=args.profile,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for name in names:
        try:
            benchmarks = build_suite(name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        logger.info("running bench suite %r (%d benchmarks)",
                    name, len(benchmarks))
        report = runner.run(name, benchmarks)
        print(render_bench_report(report), end="")
        path = report.write(args.output_dir)
        print(f"wrote {path}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.mapreduce.executors import run_worker
    from repro.obs.journal import EventJournal

    queue_dir = args.checkpoint_dir / "queue"
    journal = EventJournal.in_dir(str(args.checkpoint_dir))
    print(f"worker {os.getpid()} draining {queue_dir}")
    journal.append("worker_start")
    try:
        processed = run_worker(
            str(queue_dir),
            poll_interval=args.poll_interval,
            idle_exit=args.idle_exit,
            max_tasks=args.max_tasks,
            claim_ttl=args.claim_ttl,
            journal=journal,
        )
    finally:
        journal.append("worker_exit")
        journal.close()
    print(f"worker {os.getpid()} exiting: {processed} task(s) processed")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "detect": _cmd_detect,
    "pipeline": _cmd_pipeline,
    "run": _cmd_run,
    "worker": _cmd_worker,
    "score": _cmd_score,
    "report": _cmd_report,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "watch": _cmd_watch,
    "explain": _cmd_explain,
    "audit": _cmd_audit,
    "diff-runs": _cmd_diff_runs,
    "bench": _cmd_bench,
}

_LOG_LEVELS = {0: logging.WARNING, 1: logging.INFO}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    configure_logging(_LOG_LEVELS.get(args.verbose, logging.DEBUG))
    logger.info("running command %r", args.command)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
