"""Fig. 8/9 (elided pages) — baseline accuracy of the core algorithm.

The figure pages describing the noise-free/low-noise baseline are
missing from the available text; DESIGN.md reconstructs the experiment
as: sweep the true beacon period over the range the paper observes in
the wild (seconds to hours), with mild jitter, and verify that the
detector recovers every period with delta_d < 5% and no misses, while
Poisson controls at the matching event rates stay silent.
"""

import pytest

from benchmarks.common import ExperimentReport, check
from repro.analysis.synthetic_eval import (
    evaluate_noise_level,
    false_alarm_rate,
)
from repro.synthetic.noise import NoiseModel

DAY = 86_400.0
PERIODS = [7.5, 30.0, 63.0, 180.0, 387.0, 901.0, 1242.0, 3600.0, 7200.0]


@pytest.fixture(scope="module")
def sweep_results():
    results = {}
    for period in PERIODS:
        duration = max(DAY, 30 * period)
        noise = NoiseModel(jitter_sigma=0.02 * period)
        results[period] = evaluate_noise_level(
            period=period,
            duration=duration,
            noise=noise,
            trials=5,
            seed=int(period),
        )
    return results


def test_fig08_period_sweep(benchmark, sweep_results):
    # Benchmark one representative detection (the 387 s case).
    benchmark(
        lambda: evaluate_noise_level(
            period=387.0,
            duration=DAY,
            noise=NoiseModel(jitter_sigma=7.7),
            trials=1,
        )
    )
    fa = false_alarm_rate(rate=1 / 300.0, duration=DAY, trials=10)

    report = ExperimentReport(
        "fig08", "Baseline accuracy across the wild period range"
    )
    report.table(
        ("true period (s)", "delta_d", "gamma_d", "detection rate"),
        [
            (
                f"{period:.1f}",
                f"{r.delta_d:.4f}",
                f"{r.gamma_d:.2f}",
                f"{r.detection_rate:.2f}",
            )
            for period, r in sweep_results.items()
        ],
    )
    worst_delta = max(r.delta_d for r in sweep_results.values())
    worst_gamma = max(r.gamma_d for r in sweep_results.values())
    report.paper_vs_measured(
        [
            (
                "delta_d < 5% at low noise, all periods",
                f"worst {worst_delta:.4f}",
                check(worst_delta < 0.05),
            ),
            (
                "no misses at low noise",
                f"worst gamma_d {worst_gamma:.2f}",
                check(worst_gamma == 0.0),
            ),
            (
                "Poisson controls stay silent",
                f"false-alarm rate {fa:.2f}",
                check(fa <= 0.1),
            ),
        ]
    )
    text = report.finish()
    assert worst_delta < 0.05
    assert worst_gamma == 0.0
    assert "NO" not in text
