"""Table IV — confusion matrix of bootstrap case classification.

The paper trains a 200-tree random forest on one month of manually
investigated cases and classifies the remaining five-month cases; the
confusion matrix against VirusTotal labels is

              classified benign   classified malicious
true benign                2163                      0
true malicious               41                    148

i.e. a false positive rate of exactly 0, high accuracy, and a modest
false-negative tail (handled by Fig. 11's uncertainty review).  We
reproduce the protocol on the synthetic multi-window corpus and check
the same qualitative properties.
"""

import pytest

from benchmarks.common import ExperimentReport, check
from benchmarks.conftest import TRAIN_WINDOWS
from repro.analysis.investigate import Investigator


def test_table4_confusion_matrix(benchmark, case_corpus):
    per_window, labeler, _truths = case_corpus
    train_cases = [c for w in per_window[:TRAIN_WINDOWS] for c in w]
    eval_cases = [c for w in per_window[TRAIN_WINDOWS:] for c in w]

    investigator = Investigator(labeler, n_trees=200, seed=0)
    investigator.train(train_cases)
    report_obj = benchmark(lambda: investigator.classify(eval_cases))
    cm = report_obj.confusion

    report = ExperimentReport(
        "table4", "Confusion matrix of case classification"
    )
    report.line(f"training cases (month 1): {len(train_cases)}")
    report.line(f"evaluation cases:         {len(eval_cases)}")
    report.line()
    report.line("paper (2352 cases):")
    report.line("              classified benign   classified malicious")
    report.line("true benign                2163                      0")
    report.line("true malicious               41                    148")
    report.line()
    report.line("measured:")
    report.line(cm.as_table())
    report.paper_vs_measured(
        [
            (
                "false positive rate = 0",
                f"{cm.false_positive_rate:.4f}",
                check(cm.false_positive_rate <= 0.01),
            ),
            (
                "majority correctly classified (paper: 98.3%)",
                f"accuracy {cm.accuracy:.3f}",
                check(cm.accuracy >= 0.9),
            ),
            (
                "most malicious cases caught (paper recall: 78%)",
                f"recall {cm.recall:.3f}",
                check(cm.recall >= 0.6),
            ),
            (
                "false negatives exist but are a small minority",
                f"{cm.fn} FN of {cm.total}",
                check(cm.fn < 0.1 * cm.total),
            ),
        ]
    )
    text = report.finish()
    assert cm.false_positive_rate <= 0.01
    assert cm.accuracy >= 0.9
    assert "NO" not in text
