"""Table VI — top 5 cases reported in the 10-day trace.

The paper's October-2013 trace contained confirmed ZeuS.Zbot and
ZeroAccess infections; the five top-ranked destinations were all
malware C&C with smallest periods of 180 s (two Zbot gates), 63 s (two
more), and 1242 s (ZeroAccess), most contacted by a single client.

We implant exactly that population — two 180 s Zbot destinations, two
63 s destinations, one 1242 s ZeroAccess destination — into a 10-window
synthetic trace and require the ranking to put all five implants at the
top with the right periods.
"""

import pytest

from benchmarks.common import ExperimentReport, check
from benchmarks.workloads import DAY, pipeline_config, simulate_window
from repro.filtering import BaywatchPipeline, NoveltyStore
from repro.synthetic.enterprise import ImplantSpec

#: The Table VI population: name -> (behaviour, period).
TABLE6_IMPLANTS = (
    ImplantSpec("zbot-a", "zeus", n_infected=1, period=180.0),
    ImplantSpec("zbot-b", "zeus", n_infected=1, period=180.0),
    ImplantSpec("za-a", "zeus", n_infected=3, period=63.0),
    ImplantSpec("za-b", "zeus", n_infected=1, period=63.0),
    ImplantSpec("za-slow", "zeroaccess", n_infected=1),
)
EXPECTED_PERIODS = {"zbot-a": 180.0, "zbot-b": 180.0, "za-a": 63.0,
                    "za-b": 63.0, "za-slow": 1242.0}


@pytest.fixture(scope="module")
def ten_day_run():
    # One window carries all five C&C destinations (in the paper the
    # same destinations beacon throughout the 10 days and the novelty
    # filter reports each once; a single window gives the same case
    # population at bench scale).
    records, truth = simulate_window(
        9100, duration=DAY / 2, implants=TABLE6_IMPLANTS,
    )
    pipeline = BaywatchPipeline(
        pipeline_config(0.0), novelty=NoveltyStore()
    )
    report = pipeline.run_records(records)
    ranked = sorted(
        report.ranked_cases, key=lambda case: case.rank_score, reverse=True
    )
    return ranked, dict(truth.implant_by_destination)


def test_table6_top5(benchmark, ten_day_run):
    ranked, truth_by_domain = ten_day_run
    benchmark(lambda: sorted(ranked, key=lambda c: c.rank_score, reverse=True))

    report = ExperimentReport("table6", "Top 5 cases in the 10-day trace")
    report.table(
        ("rank", "domain", "smallest period (s)", "clients", "implant"),
        [
            (
                rank,
                case.destination,
                f"{case.smallest_period:.0f}",
                case.similar_sources,
                truth_by_domain[case.destination].name
                if case.destination in truth_by_domain
                else "-",
            )
            for rank, case in enumerate(ranked[:8], 1)
        ],
    )

    top5 = ranked[:5]
    top5_implants = sorted(
        truth_by_domain[case.destination].name
        for case in top5
        if case.destination in truth_by_domain
    )
    period_ok = all(
        case.destination not in truth_by_domain
        or abs(
            case.smallest_period
            - EXPECTED_PERIODS[truth_by_domain[case.destination].name]
        )
        / EXPECTED_PERIODS[truth_by_domain[case.destination].name]
        < 0.1
        for case in top5
    )
    report.paper_vs_measured(
        [
            (
                "all 5 top-ranked destinations are malware C&C",
                f"top 5 = {top5_implants}",
                check(top5_implants
                      == sorted(spec.name for spec in TABLE6_IMPLANTS)),
            ),
            (
                "detected smallest periods match the implants "
                "(paper: 180/180/63/63/1242 s)",
                "all within 10%" if period_ok else "mismatch",
                check(period_ok),
            ),
            (
                "multi-client C&C visible (paper: rank 3 had 3 clients)",
                f"max clients {max(c.similar_sources for c in top5)}",
                check(max(c.similar_sources for c in top5) >= 2),
            ),
        ]
    )
    text = report.finish()
    assert top5_implants == sorted(spec.name for spec in TABLE6_IMPLANTS)
    assert "NO" not in text
