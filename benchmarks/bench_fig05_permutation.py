"""Fig. 5 — permutation-based power thresholding.

The paper's figure shows the original signal's periodogram carrying a
dominant peak far above the maximum powers of m randomly permuted
copies (their examples: shuffled maxima around 120-190 while the true
peak towers above).  We regenerate the experiment on a TDSS-like trace:
the real spectral peak must exceed the 95%-confidence permutation
threshold by a wide margin, while a shuffled copy of the same signal
must not.
"""

import numpy as np
import pytest

from benchmarks.common import ExperimentReport, check
from repro.core.periodogram import max_power
from repro.core.permutation import permutation_threshold
from repro.core.timeseries import bin_series
from repro.synthetic import tdss_spec

DAY = 86_400.0
SCALE = 16.0


@pytest.fixture(scope="module")
def signal():
    rng = np.random.default_rng(5)
    trace = tdss_spec(DAY).generate(rng)
    return bin_series(trace, SCALE, binary=True)


def test_fig05_permutation_filtering(benchmark, signal):
    rng_factory = lambda: np.random.default_rng(0)
    result = benchmark(
        lambda: permutation_threshold(signal, permutations=20,
                                      confidence=0.95, rng=rng_factory())
    )
    original_power = max_power(signal)
    shuffled = rng_factory().permutation(signal)
    shuffled_power = max_power(shuffled)

    report = ExperimentReport(
        "fig05", "Permutation-based filtering (TDSS-like signal)"
    )
    report.table(
        ("quantity", "value"),
        [
            ("original max power", f"{original_power:.2f}"),
            ("permutation threshold p_T (C=95%, m=20)", f"{result.threshold:.2f}"),
            ("shuffled maxima min", f"{min(result.max_powers):.2f}"),
            ("shuffled maxima max", f"{max(result.max_powers):.2f}"),
            ("one shuffled signal's max power", f"{shuffled_power:.2f}"),
        ],
    )
    report.paper_vs_measured(
        [
            (
                "true peak well above shuffled maxima",
                f"{original_power / result.threshold:.1f}x threshold",
                check(original_power > 3 * result.threshold),
            ),
            (
                "shuffled signal itself filtered out",
                f"{shuffled_power:.2f} vs p_T {result.threshold:.2f}",
                check(shuffled_power <= 1.5 * result.threshold),
            ),
            (
                "shuffled maxima tightly clustered (paper: 120-190)",
                f"spread {max(result.max_powers) / min(result.max_powers):.2f}x",
                check(max(result.max_powers) < 3 * min(result.max_powers)),
            ),
        ]
    )
    text = report.finish()
    assert original_power > 3 * result.threshold
    assert "NO" not in text
