"""Section VIII-B2 — runtime scalability of the MapReduce deployment.

The paper reports that runtime "mainly depended on the amount of data,
especially the number of connection pairs": weekend days with 3.3 M
pairs completed in 14 minutes, weekday days with 26 M pairs in 1 h 30 m
— an 7.9x pair increase costing a 6.4x runtime increase (sub-linear in
pairs), and the whole 5-month corpus was processed in batch.

At laptop scale we measure the same relationship on the end-to-end
MapReduce runner: a "weekend" workload vs a "weekday" workload with ~4x
the connection pairs, plus the parallel-engine behaviour that stands in
for the cluster.

The executor-dispatch side of this experiment is promoted into the CI
bench harness as ``repro bench --suite scalability``
(:func:`repro.obs.bench_suites.build_scalability_suite`): one batched
detection workload priced under serial / threads / processes, gated in
perf-smoke against ``BENCH_scalability.json``.  This module keeps the
paper-facing pairs-vs-runtime experiment; the suite owns the
backend-vs-backend numbers.
"""

import time

import pytest

from benchmarks.common import ExperimentReport, check
from benchmarks.workloads import DAY, IMPLANT_MIXES, pipeline_config, simulate_window
from repro.jobs import BaywatchRunner
from repro.mapreduce import MapReduceEngine


def _workload(seed, n_hosts, sites_per_host):
    from repro.synthetic.enterprise import EnterpriseConfig, EnterpriseSimulator

    config = EnterpriseConfig(
        n_hosts=n_hosts,
        n_sites=120,
        duration=DAY / 4,
        sites_per_host=sites_per_host,
        implants=IMPLANT_MIXES[0],
        seed=seed,
    )
    return EnterpriseSimulator(config).generate()[0]


@pytest.fixture(scope="module")
def workloads():
    weekend = _workload(800, n_hosts=12, sites_per_host=(2, 5))
    weekday = _workload(801, n_hosts=45, sites_per_host=(4, 10))
    return weekend, weekday


def _run_once(records, n_workers=1):
    engine = MapReduceEngine(n_workers=n_workers, min_parallel_records=16)
    runner = BaywatchRunner(pipeline_config(0.5), engine=engine)
    start = time.perf_counter()
    report = runner.run(records)
    elapsed = time.perf_counter() - start
    engine.close()
    pairs = len({(r.source_mac, r.destination) for r in records})
    return elapsed, pairs, report


def test_scalability_pairs_vs_runtime(benchmark, workloads):
    weekend, weekday = workloads
    weekend_time, weekend_pairs, _ = _run_once(weekend)
    # Record the heavy run through the benchmark fixture (one round —
    # the comparison below uses its own wall-clock measurements).
    weekday_time, weekday_pairs, _ = benchmark.pedantic(
        lambda: _run_once(weekday), rounds=1, iterations=1
    )

    pair_ratio = weekday_pairs / weekend_pairs
    time_ratio = weekday_time / weekend_time

    report = ExperimentReport(
        "scalability", "Runtime vs number of connection pairs"
    )
    report.table(
        ("workload", "pairs", "events", "runtime (s)"),
        [
            ("weekend", weekend_pairs, len(weekend), f"{weekend_time:.1f}"),
            ("weekday", weekday_pairs, len(weekday), f"{weekday_time:.1f}"),
        ],
    )
    report.line()
    report.line(f"pair ratio:    {pair_ratio:.1f}x "
                f"(paper: 26 M / 3.3 M = 7.9x)")
    report.line(f"runtime ratio: {time_ratio:.1f}x (paper: 90 / 14 = 6.4x)")
    report.paper_vs_measured(
        [
            (
                "runtime grows with connection pairs",
                f"{time_ratio:.1f}x for {pair_ratio:.1f}x pairs",
                check(time_ratio > 1.5),
            ),
            (
                "scaling is at most ~linear in pairs (paper: sub-linear)",
                f"time ratio {time_ratio:.1f} <= 1.5 * pair ratio "
                f"{pair_ratio:.1f}",
                check(time_ratio <= 1.5 * pair_ratio),
            ),
        ]
    )
    text = report.finish()
    assert time_ratio > 1.5
    assert time_ratio <= 1.5 * pair_ratio
    assert "NO" not in text


def test_scalability_parallel_consistency(benchmark, workloads):
    """Worker-pool execution must not change the analysis output."""
    weekend, _ = workloads
    _t1, _p1, serial = _run_once(weekend, n_workers=1)
    _t2, _p2, parallel = benchmark.pedantic(
        lambda: _run_once(weekend, n_workers=4), rounds=1, iterations=1
    )
    assert [c.destination for c in serial.ranked_cases] == [
        c.destination for c in parallel.ranked_cases
    ]
    assert {c.destination for c in serial.detected_cases} == {
        c.destination for c in parallel.detected_cases
    }
