"""Session-scoped fixtures shared by the evaluation benches."""

import pytest

from benchmarks.workloads import build_case_corpus


#: Windows whose cases form the "manually investigated" training month.
#: Three windows cover most — not all — of the implant-mix rotation,
#: so, as in any real deployment, the training sample does not span
#: every malware family the evaluation months contain; the resulting
#: gray zone produces the modest false-negative tail of the paper's
#: Table IV / Fig. 11 while keeping the false-positive rate at zero.
TRAIN_WINDOWS = 3


@pytest.fixture(scope="session")
def case_corpus():
    """A multi-window case corpus for Table IV and Fig. 11.

    The first TRAIN_WINDOWS windows play the paper's manually
    investigated training month; the rest are the five-month evaluation
    body.
    """
    per_window, labeler, truths = build_case_corpus(12, seed0=1000)
    return per_window, labeler, truths
