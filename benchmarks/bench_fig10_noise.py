"""Fig. 10(a-d) — robustness against injected noise.

The paper sweeps Gaussian interval jitter against a clean baseline
(Fig. 10a), then repeats the sweep with missing-event noise at
probabilities 0.25/0.5/0.75 and adding-event noise layered on top
(Fig. 10d).  The published qualitative result: the tolerable Gaussian
level ("threshold") drops from about 30 in the Gaussian-only setting to
around 11 and 7 once the event-level noise is combined, the worst
combination being Gaussian + missing events at p = 0.75; within the
tolerated region accuracy stays high (delta_d < 5%).

We reproduce the sweep matrix on a 300 s beacon over one day and check
the same orderings.  Absolute thresholds depend on the (unpublished)
baseline period; ratios and orderings are the reproduction target.
"""

import pytest

from benchmarks.common import ExperimentReport, ascii_series, check
from repro.analysis.synthetic_eval import noise_sweep, tolerated_sigma

DAY = 86_400.0
PERIOD = 300.0
SIGMAS = [0.0, 5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 90.0]
TRIALS = 5


@pytest.fixture(scope="module")
def sweeps():
    configs = {
        "gaussian only": dict(drop_probability=0.0, add_rate=0.0),
        "+ missing p=0.25": dict(drop_probability=0.25, add_rate=0.0),
        "+ missing p=0.50": dict(drop_probability=0.50, add_rate=0.0),
        "+ missing p=0.75": dict(drop_probability=0.75, add_rate=0.0),
        "+ adding 1/600s": dict(drop_probability=0.0, add_rate=1 / 600.0),
        "+ missing 0.5 & adding": dict(
            drop_probability=0.5, add_rate=1 / 600.0
        ),
    }
    out = {}
    for name, kwargs in configs.items():
        out[name] = noise_sweep(
            SIGMAS, period=PERIOD, duration=DAY, trials=TRIALS, seed=42,
            **kwargs,
        )
    return out


def test_fig10_noise_robustness(benchmark, sweeps):
    benchmark(
        lambda: noise_sweep([10.0], period=PERIOD, duration=DAY, trials=1)
    )
    report = ExperimentReport(
        "fig10", "delta_d / gamma_d vs Gaussian sigma under event noise"
    )
    thresholds = {}
    for name, results in sweeps.items():
        report.line(f"\n[{name}]")
        report.table(
            ("sigma (s)", "delta_d", "gamma_d"),
            [
                (f"{s:.0f}", f"{r.delta_d:.4f}", f"{r.gamma_d:.2f}")
                for s, r in zip(SIGMAS, results)
            ],
        )
        report.line(
            "gamma_d shape over sigma: "
            f"[{ascii_series([r.gamma_d for r in results], width=3)}]"
        )
        thresholds[name] = tolerated_sigma(SIGMAS, results)
    report.line("\ntolerated Gaussian sigma per configuration:")
    report.table(
        ("configuration", "tolerated sigma (s)"),
        [(name, f"{t:.0f}") for name, t in thresholds.items()],
    )

    clean = thresholds["gaussian only"]
    worst = thresholds["+ missing p=0.75"]
    combined = thresholds["+ missing 0.5 & adding"]
    low_noise_delta = max(
        results[1].delta_d  # sigma = 5 s
        for results in sweeps.values()
    )
    report.paper_vs_measured(
        [
            (
                "threshold drops when event noise is added "
                "(paper: 30 -> ~11 and ~7)",
                f"{clean:.0f} -> {combined:.0f} and {worst:.0f}",
                check(worst < clean and combined < clean),
            ),
            (
                "missing p=0.75 is (one of) the worst combination(s)",
                f"{worst:.0f} <= all others",
                check(worst <= min(thresholds.values()) + 1e-9),
            ),
            (
                "delta_d < 5% while noise is below threshold",
                f"max delta_d at sigma=5: {low_noise_delta:.4f}",
                check(low_noise_delta < 0.05),
            ),
            (
                "graceful degradation, not a cliff at sigma=0",
                f"clean threshold {clean:.0f} s >= 20 s",
                check(clean >= 20.0),
            ),
        ]
    )
    text = report.finish()
    assert worst < clean
    assert "NO" not in text
