"""Section X — multi-timescale operation coverage.

The paper operates BAYWATCH "iteratively in intervals at three time
scales (daily, weekly, monthly)" precisely because each cadence sees a
different band of beacon periods: a day of traffic cannot contain
enough cycles of a multi-hour beacon, while a month analyzed at
1-second granularity is computationally hostile.

This bench measures the coverage claim: over a 3-day trace carrying a
fast (120 s) and a slow (8 h) implant, the daily-only deployment
reports only the fast implant; adding the coarse multi-day cadence
reports both — without ever reprocessing raw logs.
"""

import pytest

from benchmarks.common import ExperimentReport, check
from repro.filtering import PipelineConfig
from repro.operations import Cadence, MultiTimescaleOperator
from repro.operations.scheduler import DAY
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec


@pytest.fixture(scope="module")
def trace():
    implants = (
        ImplantSpec("fast", "zeus", n_infected=1, period=120.0),
        ImplantSpec("slow", "zeus", n_infected=1, period=28_800.0),
    )
    config = EnterpriseConfig(
        n_hosts=15,
        n_sites=30,
        duration=3 * DAY,
        session_rate=0.3 / 3600.0,
        implants=implants,
        seed=612,
    )
    records, truth = EnterpriseSimulator(config).generate()
    by_name = {
        spec.name: domain
        for domain, spec in truth.implant_by_destination.items()
    }
    days = [
        [r for r in records if day * DAY <= r.timestamp < (day + 1) * DAY]
        for day in range(3)
    ]
    return days, by_name


def _run(days, cadences):
    operator = MultiTimescaleOperator(
        PipelineConfig(local_whitelist_threshold=0.25, ranking_percentile=0.0),
        cadences=cadences,
    )
    for day in days:
        operator.ingest_day(day)
    return set(operator.reported_destinations())


def test_operations_coverage(benchmark, trace):
    days, by_name = trace
    daily_only = _run(
        days, (Cadence("daily", every_days=1, window_days=1, time_scale=1.0),)
    )
    multi = benchmark.pedantic(
        lambda: _run(
            days,
            (
                Cadence("daily", every_days=1, window_days=1, time_scale=1.0),
                Cadence("3day", every_days=3, window_days=3, time_scale=60.0),
            ),
        ),
        rounds=1,
        iterations=1,
    )

    report = ExperimentReport(
        "operations", "Daily-only vs multi-timescale coverage"
    )
    report.table(
        ("deployment", "fast implant (120 s)", "slow implant (8 h)"),
        [
            (
                "daily only",
                "reported" if by_name["fast"] in daily_only else "missed",
                "reported" if by_name["slow"] in daily_only else "missed",
            ),
            (
                "daily + 3-day coarse",
                "reported" if by_name["fast"] in multi else "missed",
                "reported" if by_name["slow"] in multi else "missed",
            ),
        ],
    )
    report.paper_vs_measured(
        [
            (
                "fast beacons are a daily catch",
                "reported" if by_name["fast"] in daily_only else "missed",
                check(by_name["fast"] in daily_only),
            ),
            (
                "multi-hour beacons need the coarse cadence "
                "(paper: 24 h periodicity via weekly/monthly)",
                f"daily={'hit' if by_name['slow'] in daily_only else 'miss'}"
                f", multi={'hit' if by_name['slow'] in multi else 'miss'}",
                check(by_name["slow"] not in daily_only
                      and by_name["slow"] in multi),
            ),
        ]
    )
    text = report.finish()
    assert by_name["slow"] in multi
    assert "NO" not in text
