"""Fig. 7 — GMM interval analysis for multiple periods (Conficker).

The paper fits Gaussian mixtures to a Conficker bot's interval list —
bursts of ~4.5 s beacons interleaved with ~175 s pauses and a rare
outlier — and selects the component count by BIC; the component means
are the candidate periods.  Our Conficker model beacons every 7.5 s for
two minutes and sleeps three hours; the mixture must recover both time
scales, and BIC must prefer the two-component model over one and three.
"""

import numpy as np
import pytest

from benchmarks.common import ExperimentReport, check
from repro.core.gmm import fit_gmm, select_gmm
from repro.core.timeseries import intervals_from_timestamps
from repro.synthetic import conficker_spec

DAY = 86_400.0


@pytest.fixture(scope="module")
def intervals():
    rng = np.random.default_rng(3)
    trace = conficker_spec(DAY).generate(rng)
    ivals = intervals_from_timestamps(trace)
    return ivals[ivals > 0]


def test_fig07_gmm_components(benchmark, intervals):
    best = benchmark(
        lambda: select_gmm(intervals, max_components=4,
                           rng=np.random.default_rng(0))
    )
    bics = {
        k: fit_gmm(intervals, k, rng=np.random.default_rng(0)).bic
        for k in range(1, 5)
    }

    report = ExperimentReport(
        "fig07", "GMM for detecting multiple periods (Conficker)"
    )
    report.line("fitted mixture components:")
    report.table(
        ("mean (s)", "std (s)", "weight"),
        [
            (f"{c.mean:.2f}", f"{c.std:.2f}", f"{c.weight:.3f}")
            for c in best.components
        ],
    )
    report.line()
    report.line("BIC vs number of components:")
    report.table(
        ("components", "BIC", "selected"),
        [
            (k, f"{bic:.1f}", "<-- best" if k == best.n_components else "")
            for k, bic in sorted(bics.items())
        ],
    )

    means = sorted(c.mean for c in best.components)
    report.paper_vs_measured(
        [
            (
                "burst period recovered (model: 7.5 s)",
                f"{means[0]:.2f} s",
                check(abs(means[0] - 7.5) < 1.0),
            ),
            (
                "sleep period recovered (model: 10800 s)",
                f"{means[-1]:.1f} s",
                check(abs(means[-1] - 10_800.0) < 300.0),
            ),
            (
                "BIC selects 2 components",
                f"{best.n_components}",
                check(best.n_components == 2),
            ),
            (
                "dominant weight on the burst component (paper: ~0.5/0.5;"
                " our bursts are longer)",
                f"{max(c.weight for c in best.components):.3f}",
                check(max(c.weight for c in best.components) > 0.5),
            ),
        ]
    )
    text = report.finish()
    assert best.n_components == 2
    assert "NO" not in text
