"""Section X — the cost of evading detection by randomness.

Not a paper table: the discussion section argues an adversary can evade
BAYWATCH "by employing purely random behavior", but that this "imposes
substantial maintenance cost" — unpredictable call-backs mean
unpredictable command delivery.  This bench quantifies both sides on a
300 s beacon:

- the detector tolerates mild randomization (r <= 0.1 of the period),
- evasion requires heavy randomization (r >= 0.5),
- at the evasion point the attacker's 95th-percentile command delay has
  grown substantially over the disciplined schedule.
"""

import numpy as np
import pytest

from benchmarks.common import ExperimentReport, check
from repro.core import DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.synthetic import BeaconSpec, NoiseModel

DAY = 86_400.0
PERIOD = 300.0
LEVELS = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)
TRIALS = 4


def _detection_rate(randomness, detector):
    hits = 0
    for trial in range(TRIALS):
        rng = np.random.default_rng(trial)
        spec = BeaconSpec(
            period=PERIOD, duration=DAY,
            noise=NoiseModel(jitter_sigma=randomness * PERIOD),
        )
        result = detector.detect(spec.generate(rng))
        if any(abs(p - PERIOD) / PERIOD < 0.15 for p in result.periods()):
            hits += 1
    return hits / TRIALS


def _p95_wait(randomness):
    rng = np.random.default_rng(0)
    intervals = np.maximum(
        rng.normal(PERIOD, randomness * PERIOD, size=50_000), 1.0
    )
    picked = rng.choice(intervals, size=50_000, p=intervals / intervals.sum())
    waits = rng.uniform(0.0, picked)
    return float(np.quantile(waits, 0.95)) / PERIOD


def test_evasion_cost(benchmark):
    detector = PeriodicityDetector(
        DetectorConfig(seed=0), threshold_cache=ThresholdCache()
    )
    rates = {}
    costs = {}
    for level in LEVELS:
        rates[level] = _detection_rate(level, detector)
        costs[level] = _p95_wait(level)
    benchmark(lambda: _detection_rate(0.1, detector))

    report = ExperimentReport(
        "evasion", "Randomness vs detectability vs attacker cost"
    )
    report.table(
        ("randomness r", "detection rate", "p95 wait / period"),
        [(f"{l:.2f}", f"{rates[l]:.2f}", f"{costs[l]:.2f}") for l in LEVELS],
    )
    evasive = [l for l in LEVELS if rates[l] < 0.5]
    evasion_level = min(evasive) if evasive else None
    report.paper_vs_measured(
        [
            (
                "mild randomization does not evade (robustness claim)",
                f"r=0.10 detected {rates[0.1]:.2f}",
                check(rates[0.1] >= 0.75),
            ),
            (
                "purely random behaviour evades (Section X concession)",
                f"r=1.00 detected {rates[1.0]:.2f}",
                check(rates[1.0] <= 0.5),
            ),
            (
                "evasion costs operational discipline",
                "no evasion within sweep" if evasion_level is None else
                f"needs r>={evasion_level:.2f}; p95 wait grows "
                f"{costs[evasion_level] / costs[0.0]:.2f}x",
                check(evasion_level is None
                      or costs[evasion_level] >= 1.2 * costs[0.0]),
            ),
        ]
    )
    text = report.finish()
    assert rates[0.1] >= 0.75
    assert "NO" not in text
