"""Related-work comparison — BAYWATCH's detector vs the simple baselines.

Not a paper table: Section IX argues qualitatively that fixed-threshold
spectral/autocorrelation schemes and interval-variance heuristics
(BotFinder-style) lack BAYWATCH's robustness.  This bench measures the
claim on four workloads:

- a clean beacon (everyone should win),
- heavy Gaussian jitter (fine-scale methods fade),
- heavy missing events (variance heuristics fail),
- bursty benign browsing (fixed thresholds false-alarm).

The reproduction target: BAYWATCH matches the baselines where they work
and beats every baseline on the workload designed to break it, without
giving up false-positive control.
"""

import numpy as np
import pytest

from benchmarks.common import ExperimentReport, check
from repro.baselines import AcfBaseline, CvBaseline, FftBaseline
from repro.core import DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.synthetic import BeaconSpec, NoiseModel, browsing_trace

DAY = 86_400.0
PERIOD = 300.0
TRIALS = 5


class _BaywatchAdapter:
    def __init__(self):
        self._detector = PeriodicityDetector(
            DetectorConfig(seed=0), threshold_cache=ThresholdCache()
        )

    def detect(self, timestamps):
        return self._detector.detect(timestamps)


DETECTORS = {
    "baywatch": _BaywatchAdapter,
    "fft (fixed SNR)": FftBaseline,
    "acf (fixed score)": AcfBaseline,
    "cv (BotFinder-style)": CvBaseline,
}


def _hit_rate(detector, noise):
    hits = 0
    for seed in range(TRIALS):
        trace = BeaconSpec(period=PERIOD, duration=DAY, noise=noise).generate(
            np.random.default_rng(seed)
        )
        result = detector.detect(trace)
        if any(abs(p - PERIOD) / PERIOD < 0.1 for p in result.periods()):
            hits += 1
    return hits / TRIALS


def _false_alarm_rate(detector):
    alarms = 0
    count = 0
    for seed in range(TRIALS * 2):
        trace = browsing_trace(
            DAY, np.random.default_rng(seed), session_rate=5 / 3600.0
        )
        if trace.size < 4:
            continue
        count += 1
        if detector.detect(trace).periods():
            alarms += 1
    return alarms / max(count, 1)


@pytest.fixture(scope="module")
def comparison():
    workloads = {
        "clean": NoiseModel(),
        "jitter s=45": NoiseModel(jitter_sigma=45.0),
        "missing p=0.5": NoiseModel(drop_probability=0.5, jitter_sigma=5.0),
    }
    table = {}
    for name, factory in DETECTORS.items():
        detector = factory()
        row = {w: _hit_rate(detector, noise) for w, noise in workloads.items()}
        row["browsing FP"] = _false_alarm_rate(detector)
        table[name] = row
    return table


def test_baseline_comparison(benchmark, comparison):
    benchmark(lambda: _hit_rate(CvBaseline(), NoiseModel()))
    report = ExperimentReport(
        "baselines", "BAYWATCH detector vs related-work baselines"
    )
    columns = ("clean", "jitter s=45", "missing p=0.5", "browsing FP")
    report.table(
        ("detector",) + columns,
        [
            (name,) + tuple(f"{row[c]:.2f}" for c in columns)
            for name, row in comparison.items()
        ],
    )
    bay = comparison["baywatch"]
    report.paper_vs_measured(
        [
            (
                "everyone detects the clean beacon",
                f"min {min(row['clean'] for row in comparison.values()):.2f}",
                check(all(row["clean"] >= 0.8 for row in comparison.values())),
            ),
            (
                "BAYWATCH at least matches every baseline under jitter",
                f"{bay['jitter s=45']:.2f}",
                check(bay["jitter s=45"] >= max(
                    row["jitter s=45"] for name, row in comparison.items()
                    if name != "baywatch"
                )),
            ),
            (
                "BAYWATCH beats the CV heuristic under missing events",
                f"{bay['missing p=0.5']:.2f} vs "
                f"{comparison['cv (BotFinder-style)']['missing p=0.5']:.2f}",
                check(bay["missing p=0.5"]
                      > comparison["cv (BotFinder-style)"]["missing p=0.5"]),
            ),
            (
                "BAYWATCH controls browsing false alarms",
                f"{bay['browsing FP']:.2f} vs fft "
                f"{comparison['fft (fixed SNR)']['browsing FP']:.2f}",
                check(bay["browsing FP"] <= 0.25
                      and bay["browsing FP"]
                      < comparison["fft (fixed SNR)"]["browsing FP"]),
            ),
        ]
    )
    text = report.finish()
    assert bay["clean"] == 1.0
    assert "NO" not in text
