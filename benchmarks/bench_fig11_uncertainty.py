"""Fig. 11 — false negatives vs cases reviewed in uncertainty order.

The paper clears its 41 false negatives by reviewing candidate cases in
decreasing classifier uncertainty: after about 550 of 2352 reviews the
remaining false negatives drop below 10, far faster than random order.
We regenerate the curve on the synthetic corpus and check:

- the curve is monotone non-increasing,
- uncertainty order clears FNs using markedly fewer reviews than the
  worst case (reviewing everything),
- a random review order is slower at the same review budget.
"""

import numpy as np
import pytest

from benchmarks.common import ExperimentReport, ascii_series, check
from benchmarks.conftest import TRAIN_WINDOWS
from repro.analysis.investigate import Investigator
from repro.ml.metrics import false_negatives_vs_reviewed


def test_fig11_uncertainty_review(benchmark, case_corpus):
    per_window, labeler, _truths = case_corpus
    train_cases = [c for w in per_window[:TRAIN_WINDOWS] for c in w]
    eval_cases = [c for w in per_window[TRAIN_WINDOWS:] for c in w]

    investigator = Investigator(labeler, n_trees=200, seed=0)
    investigator.train(train_cases)
    result = investigator.classify(eval_cases)

    benchmark(lambda: false_negatives_vs_reviewed(
        result.labels, result.predictions, result.review_order
    ))

    total_fn = int(result.fn_curve[0])
    n_cases = len(eval_cases)
    clear_at = result.cases_to_clear_fn
    half_at = result.reviews_until_fn_below(max(total_fn // 2, 0))

    rng = np.random.default_rng(0)
    random_order = rng.permutation(n_cases)
    random_curve = false_negatives_vs_reviewed(
        result.labels, result.predictions, random_order
    )
    budget = min(clear_at, n_cases)
    random_left = int(random_curve[budget])

    report = ExperimentReport(
        "fig11", "False negatives vs cases reviewed (uncertainty order)"
    )
    points = [0, n_cases // 8, n_cases // 4, n_cases // 2, n_cases]
    report.table(
        ("cases reviewed", "FN left (uncertainty)", "FN left (random)"),
        [
            (p, int(result.fn_curve[p]), int(random_curve[p]))
            for p in sorted(set(points))
        ],
    )
    report.line()
    stride = max(1, n_cases // 60)
    report.line(
        "FN curve (uncertainty order): "
        f"[{ascii_series(result.fn_curve[::stride])}]"
    )
    report.line(
        "FN curve (random order):      "
        f"[{ascii_series(random_curve[::stride])}]"
    )
    report.line()
    report.line(f"initial false negatives: {total_fn}")
    report.line(f"reviews to halve FNs:    {half_at}")
    report.line(f"reviews to clear FNs:    {clear_at} of {n_cases}")
    report.paper_vs_measured(
        [
            (
                "curve monotone non-increasing",
                "yes" if np.all(np.diff(result.fn_curve) <= 0) else "no",
                check(bool(np.all(np.diff(result.fn_curve) <= 0))),
            ),
            (
                "FNs cleared well before full review "
                "(paper: <10 FN after ~550 of 2352 = 23%)",
                f"cleared at {clear_at}/{n_cases} = "
                f"{clear_at / n_cases:.0%}",
                check(total_fn == 0 or clear_at <= 0.6 * n_cases),
            ),
            (
                "uncertainty order at least as good as random",
                f"at budget {budget}: uncertainty "
                f"{int(result.fn_curve[budget])} vs random {random_left}",
                check(random_left >= int(result.fn_curve[budget])),
            ),
        ]
    )
    text = report.finish()
    assert np.all(np.diff(result.fn_curve) <= 0)
    assert "NO" not in text
