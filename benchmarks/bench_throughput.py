"""Section VIII-B2 — per-pair detection throughput.

The paper's batch runtimes come down to per-pair analysis cost: 26 M
pairs in 90 minutes is ~4,800 pairs/second across the 13-node cluster
(~370 pairs/s per node, most pairs trivially short).  This bench pins
our per-pair costs so regressions are caught:

- short non-periodic pairs (the bulk of real traffic) must be cheap,
- a day-long 1-second-granularity beacon — the worst single-pair case —
  must stay well under a second with the threshold cache on.
"""

import numpy as np
import pytest

from benchmarks.common import ExperimentReport, check
from repro.core import DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.synthetic import BeaconSpec, browsing_trace

DAY = 86_400.0


@pytest.fixture(scope="module")
def detector():
    det = PeriodicityDetector(
        DetectorConfig(seed=0), threshold_cache=ThresholdCache()
    )
    # Warm the threshold cache the way a production run would.
    rng = np.random.default_rng(0)
    det.detect(BeaconSpec(period=300.0, duration=DAY).generate(rng))
    det.detect(browsing_trace(DAY, rng, session_rate=3 / 3600.0))
    return det


def test_throughput_short_pairs(benchmark, detector):
    """A typical sparse browsing pair: tens of events."""
    rng = np.random.default_rng(1)
    traces = [
        browsing_trace(DAY, np.random.default_rng(seed),
                       session_rate=0.5 / 3600.0)
        for seed in range(20)
    ]
    traces = [t for t in traces if t.size >= 4]

    def run_all():
        return [detector.detect(t).periodic for t in traces]

    benchmark(run_all)
    stats_mean = benchmark.stats.stats.mean
    per_pair = stats_mean / max(len(traces), 1)

    report = ExperimentReport(
        "throughput_short", "Detection cost of sparse pairs"
    )
    report.metric("per_pair_seconds", per_pair, "s")
    report.metric("pairs_per_second", 1.0 / per_pair, "1/s")
    report.table(
        ("quantity", "value"),
        [
            ("pairs per batch", len(traces)),
            ("mean batch time", f"{stats_mean * 1e3:.1f} ms"),
            ("per-pair cost", f"{per_pair * 1e3:.2f} ms"),
            ("implied throughput", f"{1 / per_pair:.0f} pairs/s"),
        ],
    )
    report.paper_vs_measured(
        [
            (
                "bulk traffic pairs are cheap (enables millions/day)",
                f"{per_pair * 1e3:.2f} ms/pair",
                check(per_pair < 0.25),
            )
        ]
    )
    text = report.finish()
    assert per_pair < 0.25
    assert "NO" not in text


def test_throughput_dense_beacon(benchmark, detector):
    """The worst single pair: a dense day-long 1 s-granularity beacon."""
    rng = np.random.default_rng(2)
    trace = BeaconSpec(period=60.0, duration=DAY).generate(rng)
    result = benchmark(lambda: detector.detect(trace))
    report = ExperimentReport(
        "throughput_dense", "Detection cost of the worst dense pair"
    )
    report.metric(
        "dense_pair_seconds", benchmark.stats.stats.mean, "s",
        period=60.0, duration=DAY,
    )
    report.table(
        ("quantity", "value"),
        [("mean detect time", f"{benchmark.stats.stats.mean * 1e3:.1f} ms")],
    )
    report.finish()
    assert result.periodic
    assert benchmark.stats.stats.mean < 2.0
