"""Shared workloads for the evaluation benches.

The paper's 5-month, 130 K-host corpus is proprietary; the benches run
the same experiments on scaled-down synthetic windows.  A *window* is
one simulated slice of enterprise traffic (hours of a few dozen hosts)
with its own implant mix; the multi-window corpus drives the Table IV /
Fig. 11 classification experiments the way the paper's months do.

Implant mixes intentionally include *hard* cases — word-composition DGA
domains (benign-looking to the LM) and heavily jittered slow beacons —
so the classifier faces the same gray zone that produced the paper's 41
false negatives.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from dataclasses import replace

from repro.analysis.intel import IntelOracle
from repro.filtering.case import BeaconingCase
from repro.filtering.pipeline import BaywatchPipeline, PipelineConfig
from repro.synthetic.background import DEFAULT_SERVICES
from repro.synthetic.enterprise import (
    EnterpriseConfig,
    EnterpriseSimulator,
    GroundTruth,
    ImplantSpec,
)

DAY = 86_400.0

#: The default service catalogue, with the niche periodic services
#: (playlist/sports tickers — the paper's confirmed false-positive
#: class) adopted by enough hosts that the *training* month contains
#: examples of them.  With 35-host windows the default 1%-adoption
#: services appear in almost no window, so the classifier would meet
#: them for the first time at evaluation — a sampling artifact of the
#: small population, not a property of the method.
BENCH_SERVICES = tuple(
    replace(service, adoption=max(service.adoption, 0.08))
    for service in DEFAULT_SERVICES
)

#: Rotating implant mixes; window i uses mix i % len(MIXES).
IMPLANT_MIXES: Tuple[Tuple[ImplantSpec, ...], ...] = (
    (
        ImplantSpec("zbot-fast", "zeus", n_infected=2, period=63.0),
        ImplantSpec("tdss", "tdss", n_infected=1),
    ),
    (
        ImplantSpec("zbot-slow", "zeus", n_infected=1, period=180.0),
        ImplantSpec("zeroaccess", "zeroaccess", n_infected=1),
        ImplantSpec("worddga", "zeus", n_infected=1, period=240.0,
                    dga_family="words", url_path="/api/v1/data"),
    ),
    (
        ImplantSpec("tdss", "tdss", n_infected=2),
        ImplantSpec("hexdga", "zeus", n_infected=1, period=901.0,
                    dga_family="hex"),
    ),
    (
        ImplantSpec("zbot", "zeus", n_infected=3, period=120.0),
        ImplantSpec("wordslow", "zeroaccess", n_infected=1,
                    dga_family="words", url_path="/content/sync"),
    ),
)


def pipeline_config(percentile: float = 0.0) -> PipelineConfig:
    """The standard bench pipeline configuration (small population)."""
    return PipelineConfig(
        local_whitelist_threshold=0.15,
        ranking_percentile=percentile,
    )


def simulate_window(
    seed: int,
    *,
    n_hosts: int = 35,
    duration: float = DAY / 4,
    implants: Sequence[ImplantSpec] = IMPLANT_MIXES[0],
):
    """One enterprise traffic window with ground truth."""
    config = EnterpriseConfig(
        n_hosts=n_hosts,
        n_sites=70,
        duration=duration,
        services=BENCH_SERVICES,
        implants=tuple(implants),
        seed=seed,
    )
    return EnterpriseSimulator(config).generate()


def build_case_corpus(
    n_windows: int,
    *,
    seed0: int = 1000,
    n_hosts: int = 35,
    duration: float = DAY / 4,
) -> Tuple[List[List[BeaconingCase]], Callable[[str], int], List[GroundTruth]]:
    """Run the pipeline over several windows; return per-window cases
    and a merged intel labeler.

    Each window gets a fresh pipeline (the paper's per-month analysis);
    the labeler answers like VirusTotal over the union of all windows'
    ground truths.
    """
    per_window: List[List[BeaconingCase]] = []
    truths: List[GroundTruth] = []
    oracles: List[IntelOracle] = []
    for index in range(n_windows):
        implants = IMPLANT_MIXES[index % len(IMPLANT_MIXES)]
        records, truth = simulate_window(
            seed0 + index, n_hosts=n_hosts, duration=duration,
            implants=implants,
        )
        pipeline = BaywatchPipeline(pipeline_config())
        report = pipeline.run_records(records)
        per_window.append(report.detected_cases)
        truths.append(truth)
        oracles.append(IntelOracle(truth))

    cache: Dict[str, int] = {}

    def labeler(destination: str) -> int:
        if destination not in cache:
            cache[destination] = max(o.label(destination) for o in oracles)
        return cache[destination]

    return per_window, labeler, truths
