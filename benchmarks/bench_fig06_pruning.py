"""Fig. 6 — pruning spectral candidates with interval statistics (TDSS).

The paper's table shows five spectral candidates for a TDSS bot
(periods 30.55, 2.37, 387.34, 8.84, 33.16 s); the minimum observed
interval (196 s) prunes everything below it, and the one-sample t-test
keeps only the true ~387 s period (its p-value 0.0767 > alpha = 5%).

We regenerate both halves: (a) the paper's literal candidate list
against the paper's published interval excerpt, and (b) a fresh
synthetic TDSS trace end to end.
"""

import numpy as np
import pytest

from benchmarks.common import ExperimentReport, check
from repro.core.pruning import prune_candidates
from repro.core.timeseries import bin_series, intervals_from_timestamps
from repro.core.periodogram import candidate_peaks
from repro.core.permutation import permutation_threshold
from repro.synthetic import tdss_spec

#: The interval excerpt printed in the paper's Fig. 6 (seconds).
PAPER_INTERVALS = [
    404, 663, 400, 362, 1933, 445, 407, 423, 372, 395, 362, 400, 369,
    822, 5512, 196, 1023, 635, 817, 919, 492, 423, 391, 442, 759,
]
#: The candidate periods from the paper's step-1 periodogram table.
PAPER_CANDIDATES = [30.5473, 2.36615, 387.34, 8.8351, 33.1626]


def test_fig06_paper_candidate_table(benchmark):
    decisions = benchmark(
        lambda: prune_candidates(PAPER_CANDIDATES, PAPER_INTERVALS)
    )
    report = ExperimentReport(
        "fig06", "Pruning using statistical features (TDSS bot)"
    )
    rows = []
    for decision in decisions:
        rows.append(
            (
                f"{decision.period:.4f}",
                "keep" if decision.kept else "prune",
                decision.reason,
                "" if decision.p_value is None else f"{decision.p_value:.4f}",
            )
        )
    report.table(("period (s)", "verdict", "reason", "p-value"), rows)

    kept = [d.period for d in decisions if d.kept]
    report.paper_vs_measured(
        [
            (
                "only 387.34 s survives pruning",
                f"kept: {kept}",
                check(kept == [387.34]),
            ),
            (
                "sub-196 s candidates die on min-interval",
                decisions[0].reason,
                check("min interval" in decisions[0].reason),
            ),
            (
                "387 s t-test p-value > 5%",
                f"{decisions[2].p_value:.4f}" if decisions[2].p_value else "n/a",
                check(decisions[2].p_value is not None
                      and decisions[2].p_value > 0.05),
            ),
        ]
    )
    text = report.finish()
    assert kept == [387.34]
    assert "NO" not in text


def test_fig06_fresh_tdss_trace(benchmark):
    rng = np.random.default_rng(11)
    trace = tdss_spec(86_400.0).generate(rng)
    intervals = intervals_from_timestamps(trace)
    scale = 16.0
    signal = bin_series(trace, scale, binary=True)
    threshold = permutation_threshold(
        signal, rng=np.random.default_rng(0)
    ).threshold
    peaks = benchmark(
        lambda: candidate_peaks(signal, threshold, max_candidates=8)
    )
    periods = [p.period * scale for p in peaks]
    decisions = prune_candidates(periods, intervals,
                                 duration=float(trace[-1] - trace[0]))
    kept = [d.period for d in decisions if d.kept]
    assert kept, "the true TDSS period must survive"
    assert all(abs(p - 387.0) / 387.0 < 0.05 for p in kept), kept
    assert len(kept) < len(periods), "pruning must remove something"
