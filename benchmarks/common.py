"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(see DESIGN.md section 4).  Results are printed to the terminal and
appended to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md
can be cross-checked against a fresh run.  ``finish()`` also writes
``benchmarks/results/<experiment>.json`` — the same fingerprinted
envelope as the ``BENCH_*.json`` perf reports (see
:mod:`repro.obs.bench`), so both trajectories are machine-readable with
one set of tooling; call :meth:`ExperimentReport.metric` to record the
numbers worth tracking across runs.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.bench import SCHEMA_VERSION, host_fingerprint

RESULTS_DIR = Path(__file__).parent / "results"


class ExperimentReport:
    """Collects printable result rows for one experiment."""

    def __init__(self, experiment_id: str, title: str) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self._buffer = io.StringIO()
        self._metrics: List[Dict[str, Any]] = []
        self.line("=" * 72)
        self.line(f"{experiment_id}: {title}")
        self.line("=" * 72)

    def line(self, text: str = "") -> None:
        """Append one output line."""
        self._buffer.write(text + "\n")

    def metric(self, name: str, value: float, unit: str = "", **extra: Any) -> None:
        """Record one machine-readable measurement for the JSON output."""
        self._metrics.append(
            {"name": name, "value": float(value), "unit": unit, **extra}
        )

    def table(self, header: Sequence[str], rows: Iterable[Sequence]) -> None:
        """Append an aligned text table."""
        rows = [tuple(str(cell) for cell in row) for row in rows]
        widths = [len(h) for h in header]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        fmt = "  ".join(f"{{:>{w}s}}" for w in widths)
        self.line(fmt.format(*header))
        self.line("  ".join("-" * w for w in widths))
        for row in rows:
            self.line(fmt.format(*row))

    def paper_vs_measured(self, claims: Iterable[Sequence]) -> None:
        """Append the paper-claim vs measured-value comparison block."""
        self.line()
        self.table(("paper claim", "measured", "holds?"), claims)

    def finish(self) -> str:
        """Print the report, persist it (text + JSON), and return the text."""
        text = self._buffer.getvalue()
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{self.experiment_id}.txt"
        out.write_text(text, encoding="utf-8")
        payload = {
            "schema": SCHEMA_VERSION,
            "kind": "experiment",
            "suite": self.experiment_id,
            "title": self.title,
            "created": time.time(),
            "fingerprint": host_fingerprint(),
            "results": list(self._metrics),
            "text": text,
        }
        json_out = RESULTS_DIR / f"{self.experiment_id}.json"
        json_out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print()
        print(text)
        return text


def check(condition: bool) -> str:
    """Render a reproduction check mark."""
    return "yes" if condition else "NO"


_BLOCKS = " .:-=+*#%@"


def ascii_series(values: Sequence[float], *, width: int = 1) -> str:
    """Render a numeric series as a one-line ASCII intensity strip.

    The paper's figures are line plots; in a terminal report, a strip
    like ``@%#=:. `` conveys the same monotone-decay shape at a glance.
    Values are min-max normalized; NaNs render as ``?``.
    """
    vals = [float(v) for v in values]
    finite = [v for v in vals if v == v]
    if not finite:
        return "?" * len(vals)
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0
    out = []
    for value in vals:
        if value != value:
            out.append("?" * width)
            continue
        level = int(round((value - low) / span * (len(_BLOCKS) - 1)))
        out.append(_BLOCKS[level] * width)
    return "".join(out)


def relative_error(measured: float, expected: float) -> float:
    """|measured - expected| / expected."""
    return abs(measured - expected) / expected
