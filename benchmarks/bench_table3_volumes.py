"""Table III — data volumes of web proxy logs.

The paper's corpus: 35.6 TB of BlueCoat logs (5.3 TB gzipped, ~6.7x
compression), 34.6 B events over six collection months, 53 M distinct
communication pairs per day on average.  We regenerate the table at
laptop scale: synthetic months produced by the enterprise simulator,
serialized in the same TSV format, with the same derived statistics —
events per month, raw and gzipped sizes, distinct pairs — plus the
extraction throughput that governs the paper's batch runtimes.
"""

import gzip
from pathlib import Path

import pytest

from benchmarks.common import ExperimentReport, check
from benchmarks.workloads import simulate_window, IMPLANT_MIXES, DAY
from repro.synthetic.logs import records_to_summaries, write_log


@pytest.fixture(scope="module")
def months(tmp_path_factory):
    """Three scaled synthetic 'months' written as gzipped TSV logs."""
    root = tmp_path_factory.mktemp("volumes")
    out = []
    for index in range(3):
        records, _truth = simulate_window(
            7000 + index,
            n_hosts=40,
            duration=DAY / 2,
            implants=IMPLANT_MIXES[index % len(IMPLANT_MIXES)],
        )
        raw_path = root / f"month{index}.tsv"
        gz_path = root / f"month{index}.tsv.gz"
        write_log(records, raw_path)
        write_log(records, gz_path, compress=True)
        pairs = {(r.source_mac, r.destination) for r in records}
        out.append(
            dict(
                index=index,
                records=records,
                events=len(records),
                raw_bytes=raw_path.stat().st_size,
                gz_bytes=gz_path.stat().st_size,
                pairs=len(pairs),
            )
        )
    return out


def test_table3_data_volumes(benchmark, months):
    # The measured operation: extracting ActivitySummaries from one
    # month of records (the paper's Data Extraction phase input side).
    sample = months[0]["records"]
    summaries = benchmark(lambda: records_to_summaries(sample))

    report = ExperimentReport("table3", "Data volumes of synthetic proxy logs")
    report.table(
        ("month", "events", "raw size (KB)", "gzipped (KB)", "ratio",
         "distinct pairs"),
        [
            (
                m["index"],
                m["events"],
                f"{m['raw_bytes'] / 1024:.0f}",
                f"{m['gz_bytes'] / 1024:.0f}",
                f"{m['raw_bytes'] / m['gz_bytes']:.1f}x",
                m["pairs"],
            )
            for m in months
        ],
    )
    total_events = sum(m["events"] for m in months)
    total_raw = sum(m["raw_bytes"] for m in months)
    total_gz = sum(m["gz_bytes"] for m in months)
    report.line()
    report.line(
        f"total: {total_events} events, {total_raw / 1024:.0f} KB raw, "
        f"{total_gz / 1024:.0f} KB gzipped"
    )
    ratio = total_raw / total_gz
    events_per_pair = total_events / sum(m["pairs"] for m in months)
    report.paper_vs_measured(
        [
            (
                "gzip compresses proxy logs ~6.7x (35.6 TB -> 5.3 TB)",
                f"{ratio:.1f}x",
                check(4.0 <= ratio <= 15.0),
            ),
            (
                "events far outnumber pairs (34.6 B events, 53 M pairs/day)",
                f"{events_per_pair:.0f} events/pair",
                check(events_per_pair > 10),
            ),
            (
                "extraction yields one summary per pair",
                f"{len(summaries)} summaries vs {months[0]['pairs']} pairs",
                check(len(summaries) == months[0]["pairs"]),
            ),
        ]
    )
    text = report.finish()
    assert 4.0 <= ratio <= 15.0
    assert "NO" not in text
