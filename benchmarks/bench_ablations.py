"""Ablations — why each design choice of the detector earns its keep.

Not a paper table: DESIGN.md section 5 commits to ablating the design
choices the paper motivates qualitatively.  Each ablation disables one
mechanism and verifies the failure mode it exists to prevent:

- interval *folding* in the t-test guards against missing-event noise,
- *GMM interval candidates* recover the second period of burst/sleep
  malware (Conficker),
- the *interval-support* requirement suppresses coarse-scale spectral
  flukes on bursty (session-structured) benign traffic,
- the *multi-scale ladder* absorbs jitter that hides fine-scale
  periodicity,
- the *local whitelist threshold* trades analyst workload against
  coverage.
"""

import numpy as np
import pytest

from benchmarks.common import ExperimentReport, check
from repro.core import DetectorConfig, PeriodicityDetector
from repro.filtering.whitelist import LocalWhitelist
from repro.synthetic import (
    BeaconSpec,
    NoiseModel,
    browsing_trace,
    conficker_spec,
    tdss_spec,
)

DAY = 86_400.0


def detector(**overrides):
    return PeriodicityDetector(DetectorConfig(seed=0, **overrides))


def detection_rate(det, specs, expected, tolerance=0.1):
    hits = 0
    for seed, spec in enumerate(specs):
        trace = spec.generate(np.random.default_rng(seed))
        result = det.detect(trace)
        if any(abs(p - expected) / expected <= tolerance
               for p in result.periods()):
            hits += 1
    return hits / len(specs)


def test_ablation_fold_vs_missing_events(benchmark):
    """Folding keeps the t-test honest when beacons go missing."""
    specs = [
        BeaconSpec(period=300.0, duration=DAY,
                   noise=NoiseModel(jitter_sigma=5.0, drop_probability=0.5))
        for _ in range(5)
    ]
    with_fold = benchmark(
        lambda: detection_rate(detector(fold_intervals=True), specs, 300.0)
    )
    without_fold = detection_rate(
        detector(fold_intervals=False), specs, 300.0
    )
    report = ExperimentReport(
        "ablation_fold", "t-test interval folding vs missing events (p=0.5)"
    )
    report.table(
        ("variant", "true-period detection rate"),
        [("folding on (default)", f"{with_fold:.2f}"),
         ("folding off", f"{without_fold:.2f}")],
    )
    report.paper_vs_measured(
        [("folding tolerates missing events",
          f"{with_fold:.2f} vs {without_fold:.2f}",
          check(with_fold >= without_fold and with_fold >= 0.8))]
    )
    text = report.finish()
    assert with_fold >= 0.8
    assert with_fold >= without_fold
    assert "NO" not in text


def test_ablation_gmm_multi_period(benchmark):
    """GMM candidates recover Conficker's sleep period."""
    trace = conficker_spec(DAY).generate(np.random.default_rng(1))
    with_gmm = benchmark(lambda: detector(use_gmm=True).detect(trace))
    without_gmm = detector(use_gmm=False).detect(trace)

    def has_macro(result):
        return any(p > 9_000 for p in result.periods())

    report = ExperimentReport(
        "ablation_gmm", "GMM interval candidates vs burst/sleep malware"
    )
    report.table(
        ("variant", "periods found (s)"),
        [
            ("GMM on (default)", [f"{p:.0f}" for p in with_gmm.periods()]),
            ("GMM off", [f"{p:.0f}" for p in without_gmm.periods()]),
        ],
    )
    report.paper_vs_measured(
        [
            ("burst period found either way",
             f"{min(with_gmm.periods()):.1f}",
             check(min(with_gmm.periods()) < 10)),
            ("macro (sleep) period requires the GMM",
             f"with: {has_macro(with_gmm)}, without: {has_macro(without_gmm)}",
             check(has_macro(with_gmm) and not has_macro(without_gmm))),
        ]
    )
    text = report.finish()
    assert has_macro(with_gmm)
    assert "NO" not in text


def test_ablation_support_filter(benchmark):
    """Interval support suppresses bursty-browsing false positives."""
    traces = [
        browsing_trace(DAY, np.random.default_rng(seed),
                       session_rate=5 / 3600.0)
        for seed in range(12)
    ]
    traces = [t for t in traces if t.size >= 4]

    def false_positives(det):
        return sum(det.detect(t).periodic for t in traces)

    strict = benchmark(lambda: false_positives(detector(min_support=0.25)))
    loose = false_positives(detector(min_support=0.0))
    report = ExperimentReport(
        "ablation_support", "Interval-support filter vs bursty browsing"
    )
    report.table(
        ("variant", f"false positives / {len(traces)} browsing pairs"),
        [("support >= 0.25 (default)", strict), ("support off", loose)],
    )
    report.paper_vs_measured(
        [("support filter cuts browsing false positives",
          f"{strict} vs {loose}",
          check(strict <= loose and strict <= len(traces) // 4))]
    )
    text = report.finish()
    assert strict <= loose
    assert "NO" not in text


def test_ablation_multi_scale(benchmark):
    """Coarse scales absorb jitter that hides fine-scale periodicity."""
    specs = [tdss_spec(DAY) for _ in range(5)]  # 387 s, sigma = 25 s
    multi = benchmark(
        lambda: detection_rate(detector(), specs, 387.0)
    )
    single = detection_rate(detector(max_scales=1), specs, 387.0)
    report = ExperimentReport(
        "ablation_scales", "Multi-scale ladder vs 1-second-only analysis"
    )
    report.table(
        ("variant", "TDSS detection rate"),
        [("multi-scale (default)", f"{multi:.2f}"),
         ("finest scale only", f"{single:.2f}")],
    )
    report.paper_vs_measured(
        [("rescaling is required for jittered beacons "
          "(paper Section VII-B rationale)",
          f"{multi:.2f} vs {single:.2f}",
          check(multi >= 0.8 and multi > single))]
    )
    text = report.finish()
    assert multi >= 0.8
    assert multi > single
    assert "NO" not in text


def test_ablation_lm_order(benchmark):
    """Why a 3-gram model (Section V-C): order vs DGA separation.

    Separation = mean normalized benign score minus mean normalized
    DGA score.  Bigrams under-model character context; the step from
    2 to 3 buys most of the separation (4-grams add a little more at
    ~10x the model size — the paper's 3-gram choice is the knee).
    """
    from repro.lm.corpus import POPULAR_DOMAINS, training_corpus
    from repro.lm.ngram import NgramLanguageModel
    from repro.synthetic.dga import generate_pool

    corpus = training_corpus()
    benign = POPULAR_DOMAINS[:100]
    dga = generate_pool(100, family="random", seed=9)

    def separation(order):
        model = NgramLanguageModel(order=order).fit(corpus)
        benign_mean = sum(model.normalized_score(d) for d in benign) / len(benign)
        dga_mean = sum(model.normalized_score(d) for d in dga) / len(dga)
        return benign_mean - dga_mean

    results = {order: separation(order) for order in (2, 3, 4)}
    benchmark(lambda: NgramLanguageModel(order=3).fit(POPULAR_DOMAINS))

    report = ExperimentReport(
        "ablation_lm_order", "n-gram order vs benign/DGA separation"
    )
    report.table(
        ("order", "separation (log10/char)"),
        [(order, f"{value:.3f}") for order, value in results.items()],
    )
    report.paper_vs_measured(
        [
            (
                "3-grams clearly beat bigrams (the paper's choice)",
                f"{results[3]:.3f} vs {results[2]:.3f}",
                check(results[3] > results[2] * 1.2),
            ),
            (
                "4-grams only add marginal separation",
                f"{results[4]:.3f} vs {results[3]:.3f}",
                check(results[4] - results[3] < results[3] - results[2]),
            ),
        ]
    )
    text = report.finish()
    assert results[3] > results[2]
    assert "NO" not in text


def test_ablation_whitelist_threshold(benchmark):
    """tau_p trades analyst workload against coverage (Section III)."""
    rng = np.random.default_rng(0)
    population = 200
    whitelist_counts = {}
    # Zipf-ish popularity: destination d_i contacted by ~200/i sources.
    observations = []
    for i in range(1, 101):
        n_sources = max(1, population // i)
        for s in range(n_sources):
            observations.append((f"host{s}", f"dest{i}.com"))

    def survivors(threshold):
        wl = LocalWhitelist(threshold).observe_pairs(observations)
        return 100 - len(wl.whitelisted_destinations())

    results = benchmark(
        lambda: {tau: survivors(tau) for tau in (0.005, 0.01, 0.05, 0.2)}
    )
    report = ExperimentReport(
        "ablation_taup", "Local whitelist threshold sweep"
    )
    report.table(
        ("tau_p", "destinations left for analysis (of 100)"),
        [(tau, count) for tau, count in results.items()],
    )
    ordered = [results[tau] for tau in sorted(results)]
    report.paper_vs_measured(
        [("higher tau_p -> more destinations to analyze",
          str(ordered),
          check(ordered == sorted(ordered)))]
    )
    text = report.finish()
    assert ordered == sorted(ordered)
    assert "NO" not in text
