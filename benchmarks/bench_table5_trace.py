"""Table V + Section VIII-B2 headline — the long-trace daily operation.

The paper runs BAYWATCH daily over a 5-month trace: ~26 suspicious
cases reported per day, 2,352 distinct destinations flagged in total,
96% of the 50 top-ranked destinations confirmed malicious, detected
periods ranging from 30 s to 929 s, several destinations with many
distinct clients (Table V), plus a handful of confirmed-benign false
positives (streaming/sports sites).

We replay the protocol on a sequence of synthetic daily windows with a
persistent novelty store, rank all reported destinations, and confirm
against the intel oracle.
"""

import pytest

from benchmarks.common import ExperimentReport, check
from benchmarks.workloads import (
    DAY,
    IMPLANT_MIXES,
    pipeline_config,
    simulate_window,
)
from repro.analysis.intel import IntelOracle
from repro.filtering import BaywatchPipeline, NoveltyStore
from repro.ml.metrics import precision_at_k

N_DAYS = 6


@pytest.fixture(scope="module")
def daily_run():
    novelty = NoveltyStore()
    all_ranked = []
    daily_counts = []
    oracles = []
    for day in range(N_DAYS):
        records, truth = simulate_window(
            5000 + day,
            duration=DAY / 4,
            implants=IMPLANT_MIXES[day % len(IMPLANT_MIXES)],
        )
        pipeline = BaywatchPipeline(
            pipeline_config(percentile=0.5), novelty=novelty
        )
        report = pipeline.run_records(records)
        all_ranked.extend(report.ranked_cases)
        daily_counts.append(len(report.ranked_cases))
        oracles.append(IntelOracle(truth))

    def confirmed(destination: str) -> int:
        return max(oracle.label(destination) for oracle in oracles)

    all_ranked.sort(key=lambda case: case.rank_score, reverse=True)
    return all_ranked, daily_counts, confirmed


def test_table5_long_trace(benchmark, daily_run):
    ranked, daily_counts, confirmed = daily_run
    benchmark(lambda: sorted(ranked, key=lambda c: c.rank_score, reverse=True))

    labels = [confirmed(case.destination) for case in ranked]
    top_k = min(10, len(ranked))
    p_at_k = precision_at_k(labels, top_k)

    report = ExperimentReport(
        "table5", "Daily operation over a multi-window trace"
    )
    report.line(f"daily reported-case counts: {daily_counts}")
    report.line(f"total reported destinations: {len(ranked)}")
    report.line()
    report.line("top-ranked cases (Table V format):")
    report.table(
        ("rank", "domain", "smallest period (s)", "clients", "confirmed"),
        [
            (
                rank,
                case.destination,
                f"{case.smallest_period:.0f}",
                case.similar_sources,
                "yes" if confirmed(case.destination) else "no",
            )
            for rank, case in enumerate(ranked[:top_k], 1)
        ],
    )

    confirmed_top = [case for case in ranked[:top_k]
                     if confirmed(case.destination)]
    periods = [case.smallest_period for case in confirmed_top]
    multi_client = [case for case in confirmed_top if case.similar_sources > 1]
    report.paper_vs_measured(
        [
            (
                "96% of top-ranked destinations confirmed malicious",
                f"precision@{top_k} = {p_at_k:.2f}",
                check(p_at_k >= 0.8),
            ),
            (
                "confirmed periods span a wide range (paper: 30-929 s)",
                f"{min(periods):.0f}-{max(periods):.0f} s",
                check(max(periods) / max(min(periods), 1e-9) > 3),
            ),
            (
                "multi-client destinations among the confirmed (paper: up "
                "to 19-20 clients)",
                f"{len(multi_client)} destinations with >1 client",
                check(len(multi_client) >= 1),
            ),
            (
                "a manageable number of cases per day (paper: ~26)",
                f"mean {sum(daily_counts) / len(daily_counts):.1f}/day",
                check(0 < sum(daily_counts) / len(daily_counts) < 60),
            ),
        ]
    )
    text = report.finish()
    assert p_at_k >= 0.8
    assert "NO" not in text
