#!/usr/bin/env python
"""Enterprise hunt: the full 8-step methodology plus investigation.

Simulates an enterprise day — browsing, benign periodic services, and
implanted malware — then runs the complete BAYWATCH pipeline and the
bootstrap investigation phase:

- phase (a) whitelist analysis (global + popularity),
- phase (b) time-series analysis (the core detector),
- phase (c) token filter, novelty, weighted ranking,
- phase (d) random-forest classification with uncertainty-ordered
  review, using a VirusTotal-like intel oracle for labels.

Run:  python examples/enterprise_hunt.py
"""

from repro.analysis import (
    IntelOracle,
    Investigator,
    correlate_campaigns,
    render_case,
)
from repro.filtering import BaywatchPipeline, PipelineConfig
from repro.ml.features import FEATURE_NAMES
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec

DAY = 86_400.0


def simulate(seed: int):
    """One enterprise window with a mixed implant population."""
    config = EnterpriseConfig(
        n_hosts=40,
        n_sites=80,
        duration=DAY / 2,
        implants=(
            ImplantSpec("zbot-fast", "zeus", n_infected=2, period=63.0),
            ImplantSpec("zbot-slow", "zeus", n_infected=1, period=180.0),
            ImplantSpec("tdss", "tdss", n_infected=2),
            ImplantSpec("zeroaccess", "zeroaccess", n_infected=1),
        ),
        seed=seed,
    )
    return EnterpriseSimulator(config).generate()


def main() -> None:
    print("=== simulating enterprise traffic ===")
    records, truth = simulate(seed=100)
    print(f"{len(records)} proxy-log events, "
          f"{len(truth.malicious_destinations)} malicious destinations, "
          f"{len(truth.infected_hosts)} infected hosts")

    print("\n=== phases (a)-(c): the 8-step pipeline ===")
    # tau_p = 0.15 for this 40-host population (the paper's 0.01 assumes
    # 130,000 hosts); report everything above the median score.
    pipeline = BaywatchPipeline(
        PipelineConfig(local_whitelist_threshold=0.15, ranking_percentile=0.5)
    )
    report = pipeline.run_records(records)
    print(report.funnel.as_text())

    print("\nranked cases (paper Table V format):")
    print(f"{'rank':>4s}  {'domain':42s} {'smallest period':>15s} {'clients':>7s}")
    for rank, case in enumerate(report.ranked_cases, 1):
        verdict = "<- implant" if case.destination in truth.malicious_destinations else ""
        print(
            f"{rank:>4d}  {case.destination:42s}"
            f" {case.smallest_period:>13.1f} s"
            f" {case.similar_sources:>7d} {verdict}"
        )

    print("\n=== phase (d): bootstrap investigation ===")
    # Train on a second, independently-seeded window ("January"), then
    # classify this window's cases automatically.
    train_records, train_truth = simulate(seed=200)
    train_pipeline = BaywatchPipeline(
        PipelineConfig(local_whitelist_threshold=0.15, ranking_percentile=0.0)
    )
    train_cases = train_pipeline.run_records(train_records).detected_cases

    oracle_train = IntelOracle(train_truth)
    oracle_eval = IntelOracle(truth)

    def labeler(destination: str) -> int:
        return max(oracle_train.label(destination), oracle_eval.label(destination))

    investigator = Investigator(labeler, n_trees=100, seed=0)
    result = investigator.bootstrap(train_cases, report.detected_cases)
    print(result.confusion.as_table())
    print(f"\nfalse positive rate: {result.confusion.false_positive_rate:.3f}")
    print(f"recall:              {result.confusion.recall:.3f}")
    print(f"reviews (in uncertainty order) to clear all FNs: "
          f"{result.cases_to_clear_fn} of {result.n_eval}")

    print("\nwhat the classifier looks at (top features):")
    for name, importance in investigator.classifier.top_features(
        FEATURE_NAMES, k=5
    ):
        print(f"  {importance:.3f}  {name}")

    print("\n=== campaign correlation ===")
    confirmed = [
        case
        for case in report.detected_cases
        if labeler(case.destination) == 1
    ]
    for campaign in correlate_campaigns(confirmed):
        print("  " + campaign.describe())

    print("\n=== analyst hand-off (top case) ===")
    print(render_case(report.ranked_cases[0], rank=1))


if __name__ == "__main__":
    main()
