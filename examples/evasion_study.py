#!/usr/bin/env python
"""Evasion study: what does it cost an attacker to hide from BAYWATCH?

The paper's discussion (Section X) argues that evading the detector by
"purely random behavior" is possible but operationally expensive: a
bot whose check-ins are unpredictable also has an unpredictable command
latency — a "soldier without discipline".

This study quantifies the trade-off.  The attacker randomizes a 300 s
beacon by drawing each interval from N(P, (r * P)^2) with increasing
randomness r; for each r we measure

- the detection rate of the core algorithm, and
- the attacker's cost: the 95th-percentile command-delivery delay
  (how stale a command can get before the bot calls in) relative to
  the disciplined schedule.

Run:  python examples/evasion_study.py
"""

import numpy as np

from repro.core import DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.synthetic import BeaconSpec, NoiseModel

DAY = 86_400.0
PERIOD = 300.0
TRIALS = 5


def detection_rate(randomness: float, detector) -> float:
    hits = 0
    for trial in range(TRIALS):
        rng = np.random.default_rng(trial)
        spec = BeaconSpec(
            period=PERIOD,
            duration=DAY,
            noise=NoiseModel(jitter_sigma=randomness * PERIOD),
        )
        result = detector.detect(spec.generate(rng))
        if any(abs(p - PERIOD) / PERIOD < 0.15 for p in result.periods()):
            hits += 1
    return hits / TRIALS


def attacker_cost(randomness: float) -> float:
    """95th-percentile wait for the next check-in, relative to P.

    A command issued at a random time waits for the residual of the
    current interval; randomness fattens the interval tail, and the
    attacker must provision for the worst case.
    """
    rng = np.random.default_rng(0)
    intervals = np.maximum(
        rng.normal(PERIOD, randomness * PERIOD, size=100_000), 1.0
    )
    # Residual waiting time of a renewal process, length-biased sampling.
    picked = rng.choice(intervals, size=100_000,
                        p=intervals / intervals.sum())
    waits = rng.uniform(0.0, picked)
    return float(np.quantile(waits, 0.95)) / PERIOD


def main() -> None:
    detector = PeriodicityDetector(
        DetectorConfig(seed=0), threshold_cache=ThresholdCache()
    )
    print(f"beacon period {PERIOD:.0f} s over one day, {TRIALS} trials per level\n")
    print(f"{'randomness r':>12s} {'detected':>9s} {'p95 wait / P':>13s}")
    crossover = None
    for r in (0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0):
        rate = detection_rate(r, detector)
        cost = attacker_cost(r)
        if crossover is None and rate < 0.5:
            crossover = r
        print(f"{r:>12.2f} {rate:>9.2f} {cost:>13.2f}")
    print()
    if crossover is None:
        print("the detector survived every randomness level swept")
    else:
        print(f"evasion needs r >= {crossover:.2f} — at that point the "
              f"95th-percentile command delay is "
              f"{attacker_cost(crossover):.1f}x the disciplined schedule's")
    print("(the paper's point: hiding from BAYWATCH costs the attacker "
          "operational discipline)")


if __name__ == "__main__":
    main()
