#!/usr/bin/env python
"""Quickstart: detect beaconing in a list of request timestamps.

This is the 60-second tour of the core API:

1. generate a noisy beacon trace (a Zeus-like bot checking in every
   3 minutes, with jitter, dropped check-ins, and unrelated traffic),
2. run :class:`repro.core.PeriodicityDetector` on the raw timestamps,
3. inspect the verified periods and their evidence.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DetectorConfig, PeriodicityDetector
from repro.synthetic import BeaconSpec, NoiseModel, poisson_trace

DAY = 86_400.0


def main() -> None:
    rng = np.random.default_rng(7)

    # A malicious implant beacons every 180 s for a day.  The channel is
    # messy: +-10 s jitter, 20% of beacons missing (laptop offline),
    # and an extra random request every ~30 minutes on the same pair.
    spec = BeaconSpec(
        period=180.0,
        duration=DAY,
        noise=NoiseModel(
            jitter_sigma=10.0,
            drop_probability=0.2,
            add_rate=1.0 / 1800.0,
        ),
    )
    timestamps = spec.generate(rng)
    print(f"trace: {timestamps.size} requests over {DAY / 3600:.0f} hours")

    # Detection: DFT + permutation threshold, pruning, ACF verification.
    detector = PeriodicityDetector(DetectorConfig(seed=0))
    result = detector.detect(timestamps)

    print(f"\nperiodic: {result.periodic}")
    for candidate in result.candidates:
        print(
            f"  period {candidate.period:8.1f} s"
            f"   ACF {candidate.acf_score:.2f}"
            f"   power {candidate.power:9.1f}"
            f"   p-value {candidate.p_value:.3f}"
            f"   found at scale {candidate.time_scale:.0f} s ({candidate.origin})"
        )

    # Negative control: Poisson traffic at the same average rate must
    # not be reported as periodic.
    control = poisson_trace(timestamps.size / DAY, DAY, rng)
    control_result = detector.detect(control)
    print(f"\nPoisson control periodic: {control_result.periodic} "
          f"({control_result.rejection_reason})")


if __name__ == "__main__":
    main()
