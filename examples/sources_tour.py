#!/usr/bin/env python
"""Sources tour: the same hunt over proxy, DNS, and NetFlow views.

The paper's discussion (Section X) claims the methodology carries over
to other data sources — it only needs (source, destination, timestamp)
triples — while warning about each source's blind spots: resolver
caching hides fast beacons from DNS, and NetFlow strips names so the
language-model indicator is unavailable.

This example builds one ground-truth traffic trace, derives all three
views, and runs detection on each, making both the claim and the
caveats concrete.

Run:  python examples/sources_tour.py
"""

import numpy as np

from repro.core import DetectorConfig, PeriodicityDetector
from repro.sources import (
    dns_records_to_summaries,
    dns_view_of_proxy,
    netflow_records_to_summaries,
    netflow_view_of_proxy,
)
from repro.synthetic import BeaconSpec, FluxBeacon, subdomain_flux_pool
from repro.synthetic.logs import records_to_summaries

DAY = 86_400.0


def build_traffic(rng):
    """Two implants: a fast 60 s beacon and a slow 20-minute one."""
    fast = FluxBeacon(
        spec=BeaconSpec(period=60.0, duration=DAY),
        domains=("c2.fast-entity.com",),
        source_mac="02:00:00:00:00:0a",
        source_ip="10.0.0.10",
    ).generate(rng)
    slow = FluxBeacon(
        spec=BeaconSpec(period=1200.0, duration=DAY),
        domains=tuple(subdomain_flux_pool("slow-entity.com", 4, seed=2)),
        source_mac="02:00:00:00:00:0b",
        source_ip="10.0.0.11",
    ).generate(rng)
    return sorted(fast + slow, key=lambda r: r.timestamp)


def describe(name, summaries, detector):
    print(f"\n[{name}] {len(summaries)} communication pairs")
    for summary in summaries:
        result = detector.detect_summary(summary)
        periods = ", ".join(f"{p:.0f}s" for p in result.periods()) or "-"
        print(f"  {summary.source:18s} -> {summary.destination:28s} "
              f"{summary.event_count:5d} events  periodic={result.periodic!s:5s}"
              f"  periods: {periods}")


def main() -> None:
    rng = np.random.default_rng(3)
    records = build_traffic(rng)
    detector = PeriodicityDetector(DetectorConfig(seed=0))
    print(f"ground truth: 60 s beacon to fast-entity.com, "
          f"1200 s fluxing beacon to slow-entity.com "
          f"({len(records)} raw events)")

    # Proxy view: the richest — full domains, per-request visibility.
    proxy = records_to_summaries(records, aggregate_entities=True)
    describe("web proxy (entity-aggregated)", proxy, detector)

    # DNS view: resolver caching (TTL 300 s) swallows the fast beacon's
    # per-request lookups; the slow beacon re-resolves every time.
    dns = dns_view_of_proxy(records, ttl=300.0)
    dns_summaries = dns_records_to_summaries(dns)
    describe("DNS resolver (TTL 300 s)", dns_summaries, detector)
    print("  note: the 60 s beacon appears at the 300 s cache period —")
    print("  the resolver view quantizes fast beacons to the TTL.")

    # NetFlow view: names are gone; pairs key on resolved IPs.
    flows = netflow_view_of_proxy(records)
    flow_summaries = netflow_records_to_summaries(flows)
    describe("NetFlow (no names)", flow_summaries, detector)
    print("  note: detection still works per IP pair, but the LM and")
    print("  token indicators are unavailable — rank with lm weight 0.")


if __name__ == "__main__":
    main()
