#!/usr/bin/env python
"""DGA campaign analysis: the language-model filter in isolation.

Botnets rendezvous on algorithmically generated domains (paper
Section V-C).  This example scores four DGA families against the
popular-domain 3-gram model and shows how the ranking filter uses the
scores — including the hard case (word-composition DGAs) that the LM
alone cannot separate, which is why BAYWATCH combines indicators.

Run:  python examples/dga_campaign.py
"""

from repro.lm import POPULAR_DOMAINS, default_scorer
from repro.synthetic import dga_families, generate_pool


def main() -> None:
    scorer = default_scorer()

    print("=== the paper's worked example ===")
    for domain in ("google.com", "skmnikrzhrrzcjcxwfprgt.com"):
        print(f"  S({domain}) = {scorer.score(domain):8.3f}   "
              f"normalized {scorer.normalized_score(domain):7.3f}")

    print("\n=== per-family separation (normalized log10 P per char) ===")
    benign_sample = POPULAR_DOMAINS[:100]
    benign_scores = [scorer.normalized_score(d) for d in benign_sample]
    print(f"  {'benign (popular domains)':28s} "
          f"mean {sum(benign_scores) / len(benign_scores):7.3f}")

    for family in dga_families():
        pool = generate_pool(100, family=family, seed=1)
        scores = [scorer.normalized_score(d) for d in pool]
        flagged = sum(scorer.is_suspicious(d) for d in pool)
        print(f"  {family:28s} mean {sum(scores) / len(scores):7.3f}   "
              f"flagged {flagged}/100")

    print("\nNote: 'words' DGAs score close to benign names — the LM is")
    print("one indicator among several; periodicity strength, rarity and")
    print("the classifier pick up what the LM misses.")

    print("\n=== triaging a mixed batch, most suspicious first ===")
    batch = list(POPULAR_DOMAINS[:5]) + generate_pool(5, family="hex", seed=3)
    for domain, score in scorer.score_many(batch):
        marker = "<- DGA-like" if scorer.is_suspicious(domain) else ""
        print(f"  {score:7.3f}  {domain:40s} {marker}")


if __name__ == "__main__":
    main()
