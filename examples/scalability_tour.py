#!/usr/bin/env python
"""Scalability tour: the MapReduce deployment of BAYWATCH.

Shows the Section VII production architecture at laptop scale:

1. each phase as a modular MapReduce job (extract -> popularity ->
   detect -> rank) over the local engine,
2. multi-day operation with rescale-and-merge: per-day extraction at
   1-second granularity, then a weekly coarse-grained pass over merged
   summaries that spots slow beacons invisible in a single day,
3. worker-pool parallelism (the stand-in for the paper's 13-node
   cluster).

Run:  python examples/scalability_tour.py
"""

import time

from repro.filtering import NoveltyStore, PipelineConfig
from repro.jobs import BaywatchRunner
from repro.mapreduce import MapReduceEngine
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec

DAY = 86_400.0


def main() -> None:
    print("=== simulating a 3-day enterprise window ===")
    config = EnterpriseConfig(
        n_hosts=25,
        n_sites=50,
        duration=3 * DAY,
        session_rate=0.4 / 3600.0,
        implants=(
            ImplantSpec("zbot", "zeus", n_infected=2, period=120.0),
            # A slow implant: one beacon every 4 hours.  Daily windows
            # see only ~6 events; the weekly pass catches it.
            ImplantSpec("apt", "apt", n_infected=1),
        ),
        seed=77,
    )
    records, truth = EnterpriseSimulator(config).generate()
    print(f"{len(records)} events over 3 days; implants: "
          f"{sorted(truth.malicious_destinations)}")

    pipeline_config = PipelineConfig(
        local_whitelist_threshold=0.2, ranking_percentile=0.5
    )

    print("\n=== daily operation (1 s granularity) ===")
    novelty = NoveltyStore()  # carried across the daily runs
    runner = BaywatchRunner(pipeline_config, novelty=novelty)
    for day in range(3):
        start, end = day * DAY, (day + 1) * DAY
        day_records = [r for r in records if start <= r.timestamp < end]
        t0 = time.time()
        report = runner.run(day_records)
        names = [case.destination for case in report.ranked_cases]
        print(f"  day {day}: {len(day_records):6d} events, "
              f"{time.time() - t0:5.1f} s -> new reports: {names}")

    print("\n=== weekly pass: rescale to 60 s, merge, re-detect ===")
    weekly_runner = BaywatchRunner(pipeline_config)
    t0 = time.time()
    weekly = weekly_runner.run(records, analysis_time_scale=60.0)
    print(f"  {time.time() - t0:.1f} s")
    print(weekly.funnel.as_text())
    slow = [case for case in weekly.ranked_cases
            if case.smallest_period and case.smallest_period > 3_600]
    print(f"  slow-beacon reports: "
          f"{[(c.destination, round(c.smallest_period)) for c in slow]}")

    print("\n=== same weekly pass on a 4-worker engine ===")
    with MapReduceEngine(n_workers=4, min_parallel_records=32) as engine:
        parallel_runner = BaywatchRunner(pipeline_config, engine=engine)
        t0 = time.time()
        parallel = parallel_runner.run(records, analysis_time_scale=60.0)
        elapsed = time.time() - t0
    same = {c.destination for c in parallel.ranked_cases} == {
        c.destination for c in weekly.ranked_cases
    }
    print(f"  {elapsed:.1f} s; identical reports: {same}")


if __name__ == "__main__":
    main()
