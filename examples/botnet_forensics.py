#!/usr/bin/env python
"""Botnet forensics: walk the algorithm through real-world behaviours.

Reproduces the paper's worked examples step by step:

- Fig. 5 — the permutation filter separating a TDSS bot's spectral
  peak from shuffled-noise maxima,
- Fig. 6 — interval-statistics pruning: of five spectral candidates,
  only the true ~387 s period survives the min-interval and t-test
  filters,
- Fig. 7 — GMM interval analysis recovering Conficker's two time
  scales (7-8 s bursts + ~3 h sleeps) with BIC model selection.

Run:  python examples/botnet_forensics.py
"""

import numpy as np

from repro.core import (
    DetectorConfig,
    PeriodicityDetector,
    bin_series,
    candidate_peaks,
    intervals_from_timestamps,
    permutation_threshold,
    prune_candidates,
    select_gmm,
)
from repro.synthetic import conficker_spec, tdss_spec

DAY = 86_400.0


def tdss_walkthrough(rng: np.random.Generator) -> None:
    print("=== TDSS (Figs. 5 & 6): permutation filter + pruning ===")
    trace = tdss_spec(DAY).generate(rng)
    intervals = intervals_from_timestamps(trace)
    print(f"trace: {trace.size} beacons; min interval "
          f"{intervals[intervals > 0].min():.0f} s")

    scale = 16.0
    signal = bin_series(trace, scale, binary=True)
    perm = permutation_threshold(signal, rng=np.random.default_rng(0))
    print(f"\npermutation filter (m=20, C=95%): threshold "
          f"p_T = {perm.threshold:.3f}")
    print(f"  shuffled maxima range: "
          f"{min(perm.max_powers):.3f} .. {max(perm.max_powers):.3f}")

    peaks = candidate_peaks(signal, perm.threshold, max_candidates=8)
    periods = [peak.period * scale for peak in peaks]
    print(f"  candidate periods above p_T: "
          f"{[f'{p:.1f}' for p in periods]}")

    print("\npruning (paper Fig. 6):")
    decisions = prune_candidates(periods, intervals,
                                 duration=float(trace[-1] - trace[0]))
    for decision in decisions:
        verdict = "KEEP " if decision.kept else "prune"
        p = f"p={decision.p_value:.4f}" if decision.p_value is not None else ""
        print(f"  {verdict} {decision.period:9.1f} s  {decision.reason} {p}")


def conficker_walkthrough(rng: np.random.Generator) -> None:
    print("\n=== Conficker (Fig. 7): GMM multi-period analysis ===")
    trace = conficker_spec(DAY).generate(rng)
    intervals = intervals_from_timestamps(trace)
    positive = intervals[intervals > 0]
    print(f"trace: {trace.size} events; interval list sample: "
          f"{[f'{i:.1f}' for i in positive[:8]]} ...")

    mixture = select_gmm(positive, max_components=4,
                         rng=np.random.default_rng(0))
    print(f"\nBIC-selected mixture: {mixture.n_components} components "
          f"(BIC {mixture.bic:.0f})")
    print(f"{'mean':>12s} {'std':>8s} {'weight':>8s}")
    for component in mixture.components:
        print(f"{component.mean:>10.1f} s {component.std:>8.2f} "
              f"{component.weight:>8.3f}")

    print("\nfull detector on the same trace:")
    detector = PeriodicityDetector(DetectorConfig(seed=0))
    result = detector.detect(trace)
    for candidate in result.candidates:
        print(f"  verified period {candidate.period:9.1f} s "
              f"(ACF {candidate.acf_score:.2f}, origin {candidate.origin})")


def main() -> None:
    rng = np.random.default_rng(42)
    tdss_walkthrough(rng)
    conficker_walkthrough(rng)


if __name__ == "__main__":
    main()
